"""Chunk decode-order scheduling (§4.2.3, generalized per §4.5).

The greedy algorithm of §4.5, restated for our prefix-sequential decoders:

  1. decode every overhanging (interference-free) chunk in any collision;
  2. subtract known chunks wherever they appear;
  3. decode newly interference-free chunks; repeat.

Because each packet's stream decoder consumes symbols left-to-right, a
packet's decoded set is always a prefix. A symbol of packet p is decodable
in collision c once every *other* packet's undecoded region in c starts
later than that symbol (plus a small pulse-overlap margin). The scheduler
below emits maximal chunks under that rule until all packets complete or no
progress is possible — the latter is exactly the paper's "failure" event
(Fig 4-7), e.g. when two collisions have identical offsets
(Assertion 4.5.1's condition is violated).

The same function is used symbolically (offsets only, Fig 4-7's MAC-level
Monte Carlo) and physically (driving :class:`~repro.zigzag.engine.ZigZagEngine`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations

from repro.errors import ConfigurationError, ScheduleError

__all__ = [
    "Placement",
    "DecodeStep",
    "greedy_schedule",
    "schedule_is_complete",
    "pairwise_offsets_distinct",
]


@dataclass(frozen=True)
class Placement:
    """One packet's appearance in one collision.

    ``start`` is the sample position of symbol 0's pulse centre within that
    collision's capture buffer (fractional); ``sps`` converts symbol
    indices to sample positions.
    """

    packet: str
    collision: int
    start: float
    n_symbols: int
    sps: int = 2

    def __post_init__(self) -> None:
        if self.n_symbols <= 0:
            raise ConfigurationError("placement needs at least one symbol")
        if self.sps < 1:
            raise ConfigurationError("sps must be >= 1")

    def symbol_position(self, index: int) -> float:
        return self.start + self.sps * index


@dataclass(frozen=True)
class DecodeStep:
    """Decode symbols [i0, i1) of *packet* from *collision*."""

    packet: str
    collision: int
    i0: int
    i1: int

    def __post_init__(self) -> None:
        if not 0 <= self.i0 < self.i1:
            raise ConfigurationError("invalid step range")

    @property
    def n_symbols(self) -> int:
        return self.i1 - self.i0


def greedy_schedule(placements: list[Placement], *,
                    margin_symbols: float = 0.0,
                    max_rounds: int | None = None) -> list[DecodeStep]:
    """Find a complete chunk decode order, or raise :class:`ScheduleError`.

    Parameters
    ----------
    placements:
        Every (packet, collision) pair. A packet may appear in several
        collisions and a collision holds one or more packets.
    margin_symbols:
        Extra spacing (in symbols) required between a decodable symbol and
        the nearest undecoded interferer — accounts for pulse-shaping
        overlap when the schedule drives a physical engine. Use 0 for
        symbolic (MAC-level) evaluation.
    """
    if not placements:
        raise ConfigurationError("no placements to schedule")
    lengths: dict[str, int] = {}
    for pl in placements:
        prior = lengths.setdefault(pl.packet, pl.n_symbols)
        if prior != pl.n_symbols:
            raise ConfigurationError(
                f"packet {pl.packet!r} has inconsistent lengths")

    by_collision: dict[int, list[Placement]] = {}
    for pl in placements:
        by_collision.setdefault(pl.collision, []).append(pl)

    placements_by_packet: dict[str, list[Placement]] = {}
    for pl in placements:
        placements_by_packet.setdefault(pl.packet, []).append(pl)

    done = {packet: 0 for packet in lengths}
    last_collision: dict[str, int] = {}
    steps: list[DecodeStep] = []
    rounds = 0
    limit_rounds = max_rounds if max_rounds is not None \
        else 4 * sum(lengths.values())

    def decode_limit(pl: Placement) -> int:
        """How far packet pl.packet could decode in pl.collision now."""
        limit = lengths[pl.packet]
        for other in by_collision[pl.collision]:
            if other.packet == pl.packet:
                continue
            if done[other.packet] >= lengths[other.packet]:
                continue
            blocker = other.symbol_position(done[other.packet])
            # Symbols strictly earlier than the blocker (minus margin) are
            # decodable; a symbol exactly at the blocker's position is not.
            allowed = (blocker - margin_symbols * pl.sps
                       - pl.start) / pl.sps
            limit = min(limit, int(math.ceil(allowed)))
        return limit

    while any(done[p] < lengths[p] for p in lengths):
        rounds += 1
        if rounds > limit_rounds:
            raise ScheduleError("scheduler exceeded round limit")
        progress = False
        for packet in sorted(lengths):
            i0 = done[packet]
            if i0 >= lengths[packet]:
                continue
            # Pick the collision offering the longest next chunk; prefer
            # the one this packet last decoded from (stream continuity —
            # mid-stream switches bootstrap from the coarser subtraction-
            # correction state).
            best: Placement | None = None
            best_limit = i0
            for pl in placements_by_packet[packet]:
                limit = decode_limit(pl)
                is_better = limit > best_limit or (
                    limit == best_limit and best is not None
                    and last_collision.get(packet) == pl.collision
                    and last_collision.get(packet) != best.collision)
                if is_better:
                    best, best_limit = pl, limit
            if best is not None and best_limit > i0:
                steps.append(DecodeStep(packet, best.collision, i0,
                                        best_limit))
                done[packet] = best_limit
                last_collision[packet] = best.collision
                progress = True
        if not progress:
            missing = {p: (done[p], lengths[p])
                       for p in lengths if done[p] < lengths[p]}
            raise ScheduleError(
                f"no decodable chunk remains; stuck packets: {missing}")
    return steps


def schedule_is_complete(placements: list[Placement],
                         steps: list[DecodeStep]) -> bool:
    """Verify every packet is fully covered by contiguous, in-order steps."""
    lengths = {pl.packet: pl.n_symbols for pl in placements}
    cursor = {p: 0 for p in lengths}
    for step in steps:
        if step.i0 != cursor.get(step.packet):
            return False
        cursor[step.packet] = step.i1
    return all(cursor[p] == lengths[p] for p in lengths)


def pairwise_offsets_distinct(placements: list[Placement],
                              tolerance: float = 0.5) -> bool:
    """Assertion 4.5.1's condition: for every packet pair that collides,
    some two collisions combine them with different relative offsets.

    Packet pairs that never appear together in any collision are
    unconstrained.
    """
    by_collision: dict[int, dict[str, Placement]] = {}
    packets = set()
    for pl in placements:
        by_collision.setdefault(pl.collision, {})[pl.packet] = pl
        packets.add(pl.packet)
    for a, b in combinations(sorted(packets), 2):
        offsets = []
        for group in by_collision.values():
            if a in group and b in group:
                offsets.append(group[b].start - group[a].start)
        if not offsets:
            continue
        if len(offsets) == 1:
            # A single joint collision is fine only if they don't overlap;
            # overlap with one equation and two unknowns is undecodable
            # unless capture-effect SIC applies (handled elsewhere).
            group_a = [g for g in by_collision.values()
                       if a in g and b in g][0]
            pa, pb = group_a[a], group_a[b]
            a_span = (pa.start, pa.symbol_position(pa.n_symbols - 1))
            b_span = (pb.start, pb.symbol_position(pb.n_symbols - 1))
            if a_span[0] <= b_span[1] and b_span[0] <= a_span[1]:
                return False
            continue
        spread = max(offsets) - min(offsets)
        if spread <= tolerance:
            return False
    return True
