"""Successive interference cancellation for capture-effect patterns.

Fig 4-1(d)/(e): when Alice's power at the AP is much higher than Bob's, the
AP decodes Alice's packet straight through the collision (capture effect),
re-encodes it, subtracts it, and then decodes Bob from the residual —
resolving both packets from a *single* collision. ZigZag "includes
interference cancellation as a special case, and uses it only when the
senders' powers and rates permit" (§2.2).

If Bob's post-subtraction copy fails its CRC, the caller keeps the soft
symbols: the next collision yields a second faulty copy of the same packet
(Alice sends a *new* packet, Bob retransmits), and MRC across the two
copies recovers it (Fig 4-1d, §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.phy.frame import HEADER_BITS
from repro.phy.sync import Synchronizer
from repro.receiver.frontend import StreamConfig, SymbolStreamDecoder
from repro.receiver.result import DecodeResult
from repro.zigzag.decoder import extract_bits
from repro.zigzag.engine import PacketSpec, PlacementParams
from repro.zigzag.reencode import Reencoder, subtract_segment

__all__ = ["SicDecoder"]


@dataclass
class SicDecoder:
    """Decode a single collision by power-ordered cancellation."""

    config: StreamConfig

    def decode(self, capture, specs: dict[str, PacketSpec],
               placements: list[PlacementParams]
               ) -> dict[str, DecodeResult]:
        """Decode packets strongest-first, subtracting each before the next.

        All placements must reference collision 0 (a single capture).
        Each packet (after the first) is *re-acquired* from the cleaned
        buffer: estimates taken on the raw collision are dominated by the
        stronger sender and only become reliable once it is gone. Weaker
        packets keep their soft symbols even on CRC failure so the caller
        can MRC-combine with a later copy.
        """
        y = np.array(capture, dtype=complex, copy=True)
        pre_len = len(self.config.preamble)
        sync = Synchronizer(self.config.preamble, self.config.shaper,
                            threshold=0.3)
        ordered = sorted(placements,
                         key=lambda pl: -abs(pl.estimate.gain))
        results: dict[str, DecodeResult] = {}
        for index, pl in enumerate(ordered):
            spec = specs[pl.packet]
            estimate, start = pl.estimate, pl.start
            if index > 0:
                # Interference above this packet is gone; re-estimate
                # around the original *detection* position (the initial
                # fractional refinement was interference-limited and may
                # itself be wrong).
                position = int(round(pl.start
                                     - pl.estimate.sampling_offset))
                try:
                    estimate = sync.acquire(
                        y, position,
                        coarse_freq=pl.estimate.freq_offset,
                        noise_power=self.config.noise_power)
                    start = position + estimate.sampling_offset
                except ReproError:
                    pass
            try:
                stream = SymbolStreamDecoder(
                    self.config, estimate, start,
                    body_constellation=spec.body_constellation)
                chunk = stream.decode_chunk(y, spec.n_symbols)
            except ReproError as exc:
                results[pl.packet] = DecodeResult.failure(str(exc),
                                                          via="sic")
                continue
            bits, crc_ok, header = extract_bits(chunk.soft, spec, pre_len)
            payload = bits[HEADER_BITS:-32] \
                if bits.size >= HEADER_BITS + 32 else np.zeros(0, np.uint8)
            results[pl.packet] = DecodeResult(
                success=crc_ok,
                bits=bits,
                header=header,
                payload=payload,
                soft_symbols=chunk.soft,
                estimate=stream.estimate,
                via="sic",
                detail="" if crc_ok else "CRC mismatch",
            )
            reencoder = Reencoder(
                shaper=self.config.shaper,
                estimate=stream.estimate,
                start=start,
                symbol_isi=stream.channel_isi,
            )
            segment, base = reencoder.image(chunk.effective_symbols, 0)
            subtract_segment(y, segment, base)
        return results
