"""Shared fixtures: seeded RNGs and the common PHY objects.

Session-scoped where construction is deterministic and reused heavily;
function-scoped RNGs keep tests independent of execution order.

Hypothesis runs under one of two registered profiles:

- ``dev`` (default): no deadline (DSP tests have warmup spikes),
  otherwise stock behavior.
- ``ci`` (select with ``HYPOTHESIS_PROFILE=ci``): additionally
  *derandomized* — example generation is a fixed function of each test,
  so CI failures reproduce exactly and a red run is never a fluke draw.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.phy.frame import Frame
from repro.phy.preamble import default_preamble
from repro.phy.pulse import PulseShaper
from repro.receiver.frontend import StreamConfig
from repro.utils.bits import random_bits

settings.register_profile("dev", deadline=None)
settings.register_profile("ci", deadline=None, derandomize=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

#: Every test that needs ad-hoc randomness shares this root seed via the
#: ``rng`` fixture below; construct a local ``default_rng`` only when a
#: test's assertions depend on a *specific* draw sequence.
TEST_SEED = 1234


@pytest.fixture
def rng():
    """The shared fixed-seed generator (fresh per test, same stream)."""
    return np.random.default_rng(TEST_SEED)


@pytest.fixture(scope="session")
def preamble():
    return default_preamble(32)


@pytest.fixture(scope="session")
def shaper():
    return PulseShaper()


@pytest.fixture
def stream_config(preamble, shaper):
    return StreamConfig(preamble=preamble, shaper=shaper, noise_power=1.0)


@pytest.fixture
def small_frame(rng, preamble):
    return Frame.make(random_bits(128, rng), src=1, seq=3,
                      preamble=preamble)


def make_frame(rng, preamble, n_bits=128, **kwargs):
    return Frame.make(random_bits(n_bits, rng), preamble=preamble, **kwargs)
