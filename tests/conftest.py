"""Shared fixtures: seeded RNGs and the common PHY objects.

Session-scoped where construction is deterministic and reused heavily;
function-scoped RNGs keep tests independent of execution order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.phy.frame import Frame
from repro.phy.preamble import default_preamble
from repro.phy.pulse import PulseShaper
from repro.receiver.frontend import StreamConfig
from repro.utils.bits import random_bits


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def preamble():
    return default_preamble(32)


@pytest.fixture(scope="session")
def shaper():
    return PulseShaper()


@pytest.fixture
def stream_config(preamble, shaper):
    return StreamConfig(preamble=preamble, shaper=shaper, noise_power=1.0)


@pytest.fixture
def small_frame(rng, preamble):
    return Frame.make(random_bits(128, rng), src=1, seq=3,
                      preamble=preamble)


def make_frame(rng, preamble, n_bits=128, **kwargs):
    return Frame.make(random_bits(n_bits, rng), preamble=preamble, **kwargs)
