"""Regenerate the golden-vector fixtures under ``tests/golden/``.

Each fixture is a small fixed-seed collision set — the raw capture
buffers, the acquisition inputs (symbol-0 positions and coarse frequency
guesses), the ground-truth body bits, and the bits the ZigZag decoder
recovered when the fixture was generated. The hidden-pair fixtures pin
the §4.2.3 pair path (two captures, :class:`ZigZagPairDecoder`); the
three-sender fixture pins the §4.5 k-way path (three captures,
:class:`ZigZagMultiDecoder` with k-copy MRC). The companion test
(``tests/test_golden_vectors.py``) re-runs synchronization + ZigZag
decoding on the *stored* waveforms and asserts the recovered bits match
**bit-exactly**, pinning the whole receive chain (sync.acquire through
engine/re-encode/subtract/tracking) across future refactors — the
end-to-end analogue of :mod:`repro.perf.reference`'s kernel oracles.

Regenerate (only after an *intentional* behavior change, and eyeball the
reported BERs before committing)::

    PYTHONPATH=src python tests/golden/regenerate.py [fixture ...]

With fixture names given, only those are rewritten — adding a new
fixture must not churn the bytes of the existing ones.
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.phy.channel import ChannelParams  # noqa: E402
from repro.phy.frame import Frame  # noqa: E402
from repro.phy.impairments import ImpairmentPipeline  # noqa: E402
from repro.phy.medium import Transmission, synthesize  # noqa: E402
from repro.phy.preamble import default_preamble  # noqa: E402
from repro.phy.pulse import PulseShaper  # noqa: E402
from repro.phy.sync import Synchronizer  # noqa: E402
from repro.receiver.frontend import StreamConfig  # noqa: E402
from repro.runner.builders import hidden_pair_scenario  # noqa: E402
from repro.utils.bits import bit_error_rate, random_bits  # noqa: E402
from repro.zigzag.decoder import (  # noqa: E402
    ZigZagMultiDecoder,
    ZigZagPairDecoder,
)
from repro.zigzag.engine import PacketSpec, PlacementParams  # noqa: E402

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

PAYLOAD_BITS = 160
PREAMBLE_LENGTH = 32
NOISE_POWER = 1.0
COARSE_FREQ_ERROR = 1.5e-5

# name -> (seed, snr_db, sender stage dicts, capture stage dicts)
FIXTURES: dict[str, tuple[int, float, tuple, tuple]] = {
    "hidden_pair_clean": (101, 12.0, (), ()),
    "hidden_pair_fading": (
        202, 13.0,
        ({"kind": "rician", "k_factor_db": 14.0,
          "coherence_samples": 1500},),
        ()),
    "hidden_pair_frontend": (
        303, 13.0,
        (),
        ({"kind": "clip", "saturation": 18.0},
         {"kind": "quantize", "enob": 8.0, "full_scale": 24.0},
         {"kind": "iq_imbalance", "amplitude_db": 0.15,
          "phase_deg": 0.8})),
}

# Fixtures decoded through the k-way multi decoder (§4.5): three
# mutually-hidden senders across three collisions. Kept separate so the
# pair fixtures above stay byte-identical to their pre-k-way form.
THREE_SENDER_FIXTURES: dict[str, tuple[int, float]] = {
    "three_senders_clean": (404, 13.0),
}

# Per-round start offsets of the three senders (samples) — distinct
# relative offsets in every round, the decodable §4.5 configuration.
THREE_SENDER_ROUNDS = ((0, 80, 180), (60, 0, 140), (100, 40, 0))


def fixture_labels(name: str) -> tuple[str, ...]:
    """Packet labels stored in fixture *name*."""
    return ("A", "B", "C") if name in THREE_SENDER_FIXTURES \
        else ("A", "B")


def all_fixture_names() -> list[str]:
    return sorted([*FIXTURES, *THREE_SENDER_FIXTURES])


def _build_three_senders(name: str) -> dict[str, np.ndarray]:
    seed, snr_db = THREE_SENDER_FIXTURES[name]
    rng = np.random.default_rng(seed)
    preamble = default_preamble(PREAMBLE_LENGTH)
    shaper = PulseShaper()
    labels = fixture_labels(name)
    amplitude = np.sqrt(10 ** (snr_db / 10) * NOISE_POWER)
    frames = {
        label: Frame.make(random_bits(PAYLOAD_BITS, rng), src=i + 1,
                          seq=i, preamble=preamble)
        for i, label in enumerate(labels)
    }
    freqs = {label: float(rng.uniform(-4e-3, 4e-3)) for label in labels}
    captures = []
    for offsets in THREE_SENDER_ROUNDS:
        txs = []
        for label, offset in zip(labels, offsets):
            params = ChannelParams(
                gain=amplitude * np.exp(1j * rng.uniform(0, 2 * np.pi)),
                freq_offset=freqs[label],
                sampling_offset=float(rng.uniform(0, 1)),
                phase_noise_std=1e-3)
            txs.append(Transmission.from_symbols(
                frames[label].symbols, shaper, params, offset, label))
        captures.append(synthesize(txs, NOISE_POWER, rng,
                                   leading=8, tail=30))
    data: dict[str, np.ndarray] = {
        "payload_bits": np.array(PAYLOAD_BITS),
        "preamble_length": np.array(PREAMBLE_LENGTH),
        "noise_power": np.array(NOISE_POWER),
        "seed": np.array(seed),
        "n_symbols": np.array(frames["A"].n_symbols),
    }
    for ci, capture in enumerate(captures):
        data[f"capture{ci}"] = capture.samples
        for t in capture.transmissions:
            key = f"c{ci}_{t.label}"
            data[f"symbol0_{key}"] = np.array(t.symbol0)
            data[f"coarse_{key}"] = np.array(
                t.params.freq_offset + rng.normal(0, COARSE_FREQ_ERROR))
    for label, frame in frames.items():
        data[f"body_{label}"] = frame.body_bits.astype(np.uint8)
    return data


def build_fixture(name: str) -> dict[str, np.ndarray]:
    """Synthesize one fixture's captures + acquisition inputs + truth."""
    if name in THREE_SENDER_FIXTURES:
        return _build_three_senders(name)
    seed, snr_db, sender_stages, capture_stages = FIXTURES[name]
    rng = np.random.default_rng(seed)
    preamble = default_preamble(PREAMBLE_LENGTH)
    shaper = PulseShaper()
    captures, frames, _, _ = hidden_pair_scenario(
        rng, preamble, shaper, snr_db=snr_db, payload_bits=PAYLOAD_BITS,
        noise_power=NOISE_POWER,
        sender_impairments=(ImpairmentPipeline.from_specs(sender_stages)
                            if sender_stages else None),
        capture_impairments=(ImpairmentPipeline.from_specs(capture_stages)
                             if capture_stages else None))
    data: dict[str, np.ndarray] = {
        "payload_bits": np.array(PAYLOAD_BITS),
        "preamble_length": np.array(PREAMBLE_LENGTH),
        "noise_power": np.array(NOISE_POWER),
        "seed": np.array(seed),
        "n_symbols": np.array(frames["A"].n_symbols),
    }
    # The same coarse-frequency guesses the builder's acquisition loop
    # would draw (the AP's client-table CFO plus association-time error).
    for ci, capture in enumerate(captures):
        data[f"capture{ci}"] = capture.samples
        for t in capture.transmissions:
            key = f"c{ci}_{t.label}"
            data[f"symbol0_{key}"] = np.array(t.symbol0)
            data[f"coarse_{key}"] = np.array(
                t.params.freq_offset + rng.normal(0, COARSE_FREQ_ERROR))
    for label, frame in frames.items():
        data[f"body_{label}"] = frame.body_bits.astype(np.uint8)
    return data


def decode_fixture(name: str, data: dict) -> dict[str, np.ndarray]:
    """Sync + ZigZag-decode a fixture's stored waveforms from scratch."""
    preamble = default_preamble(int(data["preamble_length"]))
    shaper = PulseShaper()
    noise_power = float(data["noise_power"])
    sync = Synchronizer(preamble, shaper, threshold=0.3)
    n_symbols = int(data["n_symbols"])
    labels = fixture_labels(name)
    n_captures = len(labels)  # one collision per packet of the set
    placements = []
    captures = []
    for ci in range(n_captures):
        samples = np.asarray(data[f"capture{ci}"])
        captures.append(samples)
        for label in labels:
            key = f"c{ci}_{label}"
            symbol0 = int(data[f"symbol0_{key}"])
            est = sync.acquire(samples, symbol0,
                               coarse_freq=float(data[f"coarse_{key}"]),
                               noise_power=noise_power)
            placements.append(PlacementParams(
                label, ci, symbol0 + est.sampling_offset, est))
    config = StreamConfig(preamble=preamble, shaper=shaper,
                          noise_power=noise_power)
    specs = {label: PacketSpec(label, n_symbols) for label in labels}
    decoder_cls = ZigZagMultiDecoder if name in THREE_SENDER_FIXTURES \
        else ZigZagPairDecoder
    outcome = decoder_cls(config).decode(captures, specs, placements)
    return {label: outcome.results[label].bits.astype(np.uint8)
            for label in labels}


def regenerate(names: list[str] | None = None) -> None:
    for name in (names or all_fixture_names()):
        data = build_fixture(name)
        decoded = decode_fixture(name, data)
        for label, bits in decoded.items():
            data[f"decoded_{label}"] = bits
            truth = data[f"body_{label}"]
            ber = bit_error_rate(truth, bits[:truth.size]) \
                if bits.size >= truth.size else 1.0
            print(f"{name:24s} {label}: {bits.size:4d} bits  "
                  f"ber vs truth = {ber:.5f}")
        path = GOLDEN_DIR / f"{name}.npz"
        np.savez_compressed(path, **data)
        print(f"  -> wrote {path}")


if __name__ == "__main__":
    regenerate(sys.argv[1:] or None)
