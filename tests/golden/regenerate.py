"""Regenerate the golden-vector fixtures under ``tests/golden/``.

Each fixture is a small fixed-seed hidden-pair collision pair — the raw
capture buffers, the acquisition inputs (symbol-0 positions and coarse
frequency guesses), the ground-truth body bits, and the bits the ZigZag
pair decoder recovered when the fixture was generated. The companion test
(``tests/test_golden_vectors.py``) re-runs synchronization + ZigZag
decoding on the *stored* waveforms and asserts the recovered bits match
**bit-exactly**, pinning the whole receive chain (sync.acquire through
engine/re-encode/subtract/tracking) across future refactors — the
end-to-end analogue of :mod:`repro.perf.reference`'s kernel oracles.

Regenerate (only after an *intentional* behavior change, and eyeball the
reported BERs before committing)::

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from __future__ import annotations

import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))

from repro.phy.impairments import ImpairmentPipeline  # noqa: E402
from repro.phy.preamble import default_preamble  # noqa: E402
from repro.phy.pulse import PulseShaper  # noqa: E402
from repro.phy.sync import Synchronizer  # noqa: E402
from repro.receiver.frontend import StreamConfig  # noqa: E402
from repro.runner.builders import hidden_pair_scenario  # noqa: E402
from repro.utils.bits import bit_error_rate  # noqa: E402
from repro.zigzag.decoder import ZigZagPairDecoder  # noqa: E402
from repro.zigzag.engine import PacketSpec  # noqa: E402

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

PAYLOAD_BITS = 160
PREAMBLE_LENGTH = 32
NOISE_POWER = 1.0
COARSE_FREQ_ERROR = 1.5e-5

# name -> (seed, snr_db, sender stage dicts, capture stage dicts)
FIXTURES: dict[str, tuple[int, float, tuple, tuple]] = {
    "hidden_pair_clean": (101, 12.0, (), ()),
    "hidden_pair_fading": (
        202, 13.0,
        ({"kind": "rician", "k_factor_db": 14.0,
          "coherence_samples": 1500},),
        ()),
    "hidden_pair_frontend": (
        303, 13.0,
        (),
        ({"kind": "clip", "saturation": 18.0},
         {"kind": "quantize", "enob": 8.0, "full_scale": 24.0},
         {"kind": "iq_imbalance", "amplitude_db": 0.15,
          "phase_deg": 0.8})),
}


def build_fixture(name: str) -> dict[str, np.ndarray]:
    """Synthesize one fixture's captures + acquisition inputs + truth."""
    seed, snr_db, sender_stages, capture_stages = FIXTURES[name]
    rng = np.random.default_rng(seed)
    preamble = default_preamble(PREAMBLE_LENGTH)
    shaper = PulseShaper()
    captures, frames, _, _ = hidden_pair_scenario(
        rng, preamble, shaper, snr_db=snr_db, payload_bits=PAYLOAD_BITS,
        noise_power=NOISE_POWER,
        sender_impairments=(ImpairmentPipeline.from_specs(sender_stages)
                            if sender_stages else None),
        capture_impairments=(ImpairmentPipeline.from_specs(capture_stages)
                             if capture_stages else None))
    data: dict[str, np.ndarray] = {
        "payload_bits": np.array(PAYLOAD_BITS),
        "preamble_length": np.array(PREAMBLE_LENGTH),
        "noise_power": np.array(NOISE_POWER),
        "seed": np.array(seed),
        "n_symbols": np.array(frames["A"].n_symbols),
    }
    # The same coarse-frequency guesses the builder's acquisition loop
    # would draw (the AP's client-table CFO plus association-time error).
    for ci, capture in enumerate(captures):
        data[f"capture{ci}"] = capture.samples
        for t in capture.transmissions:
            key = f"c{ci}_{t.label}"
            data[f"symbol0_{key}"] = np.array(t.symbol0)
            data[f"coarse_{key}"] = np.array(
                t.params.freq_offset + rng.normal(0, COARSE_FREQ_ERROR))
    for label, frame in frames.items():
        data[f"body_{label}"] = frame.body_bits.astype(np.uint8)
    return data


def decode_fixture(data: dict) -> dict[str, np.ndarray]:
    """Sync + ZigZag-decode a fixture's stored waveforms from scratch."""
    preamble = default_preamble(int(data["preamble_length"]))
    shaper = PulseShaper()
    noise_power = float(data["noise_power"])
    sync = Synchronizer(preamble, shaper, threshold=0.3)
    n_symbols = int(data["n_symbols"])
    placements = []
    captures = []
    from repro.zigzag.engine import PlacementParams

    for ci in range(2):
        samples = np.asarray(data[f"capture{ci}"])
        captures.append(samples)
        for label in ("A", "B"):
            key = f"c{ci}_{label}"
            symbol0 = int(data[f"symbol0_{key}"])
            est = sync.acquire(samples, symbol0,
                               coarse_freq=float(data[f"coarse_{key}"]),
                               noise_power=noise_power)
            placements.append(PlacementParams(
                label, ci, symbol0 + est.sampling_offset, est))
    config = StreamConfig(preamble=preamble, shaper=shaper,
                          noise_power=noise_power)
    specs = {label: PacketSpec(label, n_symbols) for label in ("A", "B")}
    outcome = ZigZagPairDecoder(config).decode(captures, specs, placements)
    return {label: outcome.results[label].bits.astype(np.uint8)
            for label in ("A", "B")}


def regenerate() -> None:
    for name in FIXTURES:
        data = build_fixture(name)
        decoded = decode_fixture(data)
        for label, bits in decoded.items():
            data[f"decoded_{label}"] = bits
            truth = data[f"body_{label}"]
            ber = bit_error_rate(truth, bits[:truth.size]) \
                if bits.size >= truth.size else 1.0
            print(f"{name:24s} {label}: {bits.size:4d} bits  "
                  f"ber vs truth = {ber:.5f}")
        path = GOLDEN_DIR / f"{name}.npz"
        np.savez_compressed(path, **data)
        print(f"  -> wrote {path}")


if __name__ == "__main__":
    regenerate()
