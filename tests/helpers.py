"""Shared scenario builders for integration tests.

The builders themselves now live in :mod:`repro.runner.builders` (so
benchmarks and the runner's scenarios can use them without reaching into
``tests/``); this module re-exports them for existing test imports.
"""

from __future__ import annotations

from repro.runner.builders import hidden_pair_scenario

__all__ = ["hidden_pair_scenario"]
