"""Capacity region (Fig 1-3) and error-decay theory (§4.3a) tests."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.analysis.capacity import (
    CapacityRegion,
    point_is_decodable,
    rate_pair_for_equal_rates,
)
from repro.analysis.theory import (
    bpsk_ber,
    error_propagation_probability,
    expected_error_run_length,
    qfunc,
)


class TestCapacityRegion:
    def test_fig_1_3_claim(self):
        """(R, R) with R the single-user rate is never decodable."""
        for snr in (0.5, 1.0, 10.0, 100.0):
            rate, inside = rate_pair_for_equal_rates(snr)
            assert rate == pytest.approx(math.log2(1 + snr))
            assert not inside

    def test_half_rate_pair_is_decodable(self):
        """ZigZag's effective rate R/2 per collision slot is inside."""
        snr = 10.0
        rate = math.log2(1 + snr) / 2
        assert point_is_decodable(snr, snr, rate, rate)

    def test_single_user_corner(self):
        region = CapacityRegion(10.0, 10.0)
        assert region.contains(region.max_rate_a, 0.0)
        assert not region.contains(region.max_rate_a + 0.1, 0.0)

    def test_sum_constraint_binds(self):
        region = CapacityRegion(10.0, 10.0)
        half_sum = region.sum_capacity / 2
        assert region.contains(half_sum, half_sum)
        assert not region.contains(half_sum + 0.05, half_sum + 0.05)

    def test_corner_points_inside(self):
        region = CapacityRegion(5.0, 2.0)
        for ra, rb in region.corner_points():
            assert region.contains(ra, rb)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CapacityRegion(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            CapacityRegion(1.0, 1.0).contains(-0.1, 0.0)


class TestTheory:
    def test_qfunc_values(self):
        assert qfunc(0.0) == pytest.approx(0.5)
        assert qfunc(3.0) == pytest.approx(0.00135, rel=0.01)

    def test_bpsk_ber_known_point(self):
        # At Es/N0 = 9.6 dB, BPSK BER ~ 1e-5.
        assert bpsk_ber(10 ** 0.96) == pytest.approx(1e-5, rel=0.5)

    def test_bpsk_ber_monotone(self):
        assert bpsk_ber(1.0) > bpsk_ber(2.0) > bpsk_ber(4.0)

    def test_paper_one_sixth(self):
        """§4.3a: propagation probability is 1/6 for BPSK."""
        assert error_propagation_probability() == pytest.approx(1 / 6)

    def test_expected_run_length(self):
        assert expected_error_run_length() == pytest.approx(1.2)
        assert expected_error_run_length(0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bpsk_ber(-1.0)
        with pytest.raises(ConfigurationError):
            expected_error_run_length(1.0)
        with pytest.raises(ConfigurationError):
            error_propagation_probability(0.0)
