"""Batched pair-decoder equivalence: bit-exact against the per-trial path.

The contract that makes ``BatchedPairDecoder.decode_batch`` a pure
throughput knob: for any mix of trials, every trial's decoded bits,
header, and CRC verdict are identical to running the inherited scalar
:meth:`ZigZagPairDecoder.decode` on that trial alone. Three layers pin
it here:

- **Golden fixtures** (``tests/golden/*.npz``): all fixtures stacked
  into *one* batch must reproduce the pinned decodes bit-exactly —
  including the three-sender fixture, which the lockstep path cannot
  take (k = 3) and must route through the scalar fallback unchanged.
- **Hypothesis batch-axis properties**: batch-of-N equals N independent
  single-trial runs, batch-of-1 equals the unbatched scalar call, and
  ragged payload lengths group by schedule signature without
  cross-contamination.
- **Exercise honesty**: ``last_stats`` shows the lockstep path genuinely
  ran (a suite where everything silently fell back to scalar would pass
  equality vacuously).
"""

import importlib.util
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.preamble import default_preamble
from repro.phy.pulse import PulseShaper
from repro.phy.sync import Synchronizer
from repro.receiver.frontend import StreamConfig
from repro.runner.builders import hidden_pair_scenario
from repro.zigzag.batch import BatchedPairDecoder
from repro.zigzag.decoder import ZigZagPairDecoder
from repro.zigzag.engine import PacketSpec, PlacementParams

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

_spec = importlib.util.spec_from_file_location(
    "golden_regenerate_batched", GOLDEN_DIR / "regenerate.py")
golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden)

FIXTURE_NAMES = golden.all_fixture_names()
PAIR_FIXTURES = [n for n in FIXTURE_NAMES
                 if n not in golden.THREE_SENDER_FIXTURES]


def _load(name: str) -> dict:
    path = GOLDEN_DIR / f"{name}.npz"
    assert path.exists(), (
        f"missing golden fixture {path}; run tests/golden/regenerate.py")
    with np.load(path) as data:
        return {key: np.array(data[key]) for key in data.files}


def _fixture_trial(name: str, data: dict):
    """Rebuild a fixture's (captures, specs, placements) trial tuple via
    the same acquisition path ``decode_fixture`` runs."""
    preamble = default_preamble(int(data["preamble_length"]))
    shaper = PulseShaper()
    noise_power = float(data["noise_power"])
    sync = Synchronizer(preamble, shaper, threshold=0.3)
    n_symbols = int(data["n_symbols"])
    labels = golden.fixture_labels(name)
    captures, placements = [], []
    for ci in range(len(labels)):
        samples = np.asarray(data[f"capture{ci}"])
        captures.append(samples)
        for label in labels:
            key = f"c{ci}_{label}"
            symbol0 = int(data[f"symbol0_{key}"])
            est = sync.acquire(samples, symbol0,
                               coarse_freq=float(data[f"coarse_{key}"]),
                               noise_power=noise_power)
            placements.append(PlacementParams(
                label, ci, symbol0 + est.sampling_offset, est))
    specs = {label: PacketSpec(label, n_symbols) for label in labels}
    config = StreamConfig(preamble=preamble, shaper=shaper,
                          noise_power=noise_power)
    return config, (captures, specs, placements)


def _fingerprints(outcome) -> dict:
    return {name: (result.success,
                   np.asarray(result.bits, dtype=np.uint8).copy())
            for name, result in outcome.results.items()}


def _assert_same_decode(got, want, context: str) -> None:
    assert got.keys() == want.keys(), context
    for name in want:
        assert got[name][0] == want[name][0], \
            f"{context}: CRC verdict diverged for packet {name}"
        assert np.array_equal(got[name][1], want[name][1]), \
            f"{context}: decoded bits diverged for packet {name}"


class TestGoldenBatchEquality:
    def test_all_fixtures_stacked_into_one_batch(self):
        """Every golden fixture decoded in a single ``decode_batch`` call
        matches the per-trial scalar decode bit-exactly."""
        loaded = [(name, *_fixture_trial(name, _load(name)))
                  for name in FIXTURE_NAMES]
        config = loaded[0][1]
        decoder = BatchedPairDecoder(config)
        outcomes = decoder.decode_batch([trial for _, _, trial in loaded])
        assert decoder.last_stats.trials == len(loaded)
        for (name, cfg, trial), outcome in zip(loaded, outcomes):
            scalar = ZigZagPairDecoder(cfg).decode(*trial)
            _assert_same_decode(_fingerprints(outcome),
                                _fingerprints(scalar), name)

    @pytest.mark.parametrize("name", PAIR_FIXTURES)
    def test_pair_fixture_matches_pinned_bits(self, name):
        """The batched decode reproduces the committed golden bits, not
        just whatever the current scalar path emits."""
        data = _load(name)
        config, trial = _fixture_trial(name, data)
        outcome = BatchedPairDecoder(config).decode_batch([trial])[0]
        for label in golden.fixture_labels(name):
            got = np.asarray(outcome.results[label].bits, dtype=np.uint8)
            assert np.array_equal(got, data[f"decoded_{label}"]), \
                f"{name}/{label}: batched decode drifted from the pins"

    def test_three_sender_fixture_falls_back_bit_exact(self):
        """k = 3 trials cannot run lockstep; the fallback must be the
        scalar path, unchanged."""
        name = next(iter(golden.THREE_SENDER_FIXTURES))
        config, trial = _fixture_trial(name, _load(name))
        decoder = BatchedPairDecoder(config)
        outcome = decoder.decode_batch([trial])[0]
        assert decoder.last_stats.fallback == 1
        assert decoder.last_stats.lockstep == 0
        scalar = ZigZagPairDecoder(config).decode(*trial)
        _assert_same_decode(_fingerprints(outcome),
                            _fingerprints(scalar), name)


# ----------------------------------------------------------------------
# Synthesized-trial properties over the batch axis
# ----------------------------------------------------------------------
_PRE = default_preamble(32)
_SH = PulseShaper()
_CONFIG = StreamConfig(preamble=_PRE, shaper=_SH, noise_power=1.0)


def _make_trial(seed: int, payload_bits: int):
    rng = np.random.default_rng(seed)
    captures, _, specs, placements = hidden_pair_scenario(
        rng, _PRE, _SH, snr_db=12.0, payload_bits=payload_bits,
        noise_power=1.0)
    return ([c.samples for c in captures], specs, placements)


class TestBatchAxisProperties:
    def test_lockstep_path_is_exercised(self):
        """Guard against vacuous equality: a clean batch must actually
        run lockstep, not quietly fall back to the scalar loop."""
        decoder = BatchedPairDecoder(_CONFIG)
        decoder.decode_batch(
            [_make_trial(9000 + i, 96) for i in range(6)])
        assert decoder.last_stats.lockstep > 0
        assert decoder.last_stats.groups >= 1

    @given(st.integers(0, 2**16), st.integers(2, 5))
    @settings(max_examples=8, deadline=None)
    def test_batch_of_n_equals_singles(self, seed, n):
        trials = [_make_trial(seed * 31 + i, 64) for i in range(n)]
        decoder = BatchedPairDecoder(_CONFIG)
        batched = decoder.decode_batch(trials)
        for i, trial in enumerate(trials):
            single = BatchedPairDecoder(_CONFIG).decode_batch([trial])[0]
            scalar = ZigZagPairDecoder(_CONFIG).decode(*trial)
            _assert_same_decode(_fingerprints(batched[i]),
                                _fingerprints(single),
                                f"trial {i}: batch-of-{n} vs batch-of-1")
            _assert_same_decode(_fingerprints(batched[i]),
                                _fingerprints(scalar),
                                f"trial {i}: batch-of-{n} vs scalar")

    @given(st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_batch_of_one_equals_unbatched(self, seed):
        trial = _make_trial(seed, 96)
        batched = BatchedPairDecoder(_CONFIG).decode_batch([trial])[0]
        scalar = ZigZagPairDecoder(_CONFIG).decode(*trial)
        _assert_same_decode(_fingerprints(batched), _fingerprints(scalar),
                            f"seed {seed}")

    @given(st.integers(0, 2**16))
    @settings(max_examples=6, deadline=None)
    def test_ragged_payload_lengths_grouped(self, seed):
        """Mixed payload lengths land in different signature groups (the
        batched engine pads per group, never across groups) and every
        trial still equals its scalar decode."""
        sizes = [48, 112, 48, 80, 112, 48]
        trials = [_make_trial(seed * 17 + i, bits)
                  for i, bits in enumerate(sizes)]
        decoder = BatchedPairDecoder(_CONFIG)
        batched = decoder.decode_batch(trials)
        assert decoder.last_stats.trials == len(sizes)
        assert decoder.last_stats.groups >= len(set(sizes))
        for i, trial in enumerate(trials):
            scalar = ZigZagPairDecoder(_CONFIG).decode(*trial)
            _assert_same_decode(
                _fingerprints(batched[i]), _fingerprints(scalar),
                f"trial {i} (payload {sizes[i]})")
