"""Trial-axis batched kernels against their scalar-loop oracles.

The batched kernels in ``repro.phy.batch`` / the batched synchronizer
methods did not replace scalar code — the loop over lanes IS their
baseline, preserved in ``repro.perf.reference`` as
``batched_*_loop``. These tests pin the equivalence contract that makes
the batch axis safe (and batch-size-invariant):

- decisions/decoded bits are **identical** to the per-lane scalar path;
- float internals (soft symbols, tracked phases, channel estimates)
  agree to ~1e-9 — the batched paths evaluate the same recurrences in a
  different association order;
- a lane's outputs depend only on its own samples: batch-of-N equals
  per-lane batch-of-1, and batch-of-1 equals the unbatched scalar call.

``repro.phy.medium.synthesize_batch`` is held to a stricter standard:
sample-identical to per-trial ``synthesize`` (same rng, same draw
order), because per-trial seed streams must not depend on batching.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.perf import reference
from repro.phy.batch import (
    BatchedMatchedSampler,
    BatchedPhaseTracker,
    stack_rows,
    wrap_pi,
)
from repro.phy.channel import ChannelParams
from repro.phy.coding.convolutional import ConvolutionalCode
from repro.phy.constellation import BPSK, QPSK
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, synthesize, synthesize_batch
from repro.phy.preamble import default_preamble
from repro.phy.pulse import PulseShaper
from repro.phy.sync import Synchronizer
from repro.utils.bits import random_bits

TOL = 1e-9


def _lane_waveforms(shaper, rng, n_lanes, n_symbols):
    """Per-lane BPSK waveforms embedded in one zero-margined buffer."""
    pad = shaper.delay + shaper.taps.size
    waves = [shaper.shape(BPSK.modulate(rng.integers(0, 2, n_symbols)))
             for _ in range(n_lanes)]
    padded = np.zeros((n_lanes, 2 * pad + waves[0].size), dtype=complex)
    for i, w in enumerate(waves):
        padded[i, pad:pad + w.size] = w
    return padded, pad


class TestWrapPi:
    @given(st.floats(-9.0, 9.0))
    @settings(max_examples=60)
    def test_matches_math_remainder(self, x):
        assert wrap_pi(x) == math.remainder(x, 2.0 * math.pi)


class TestStackRows:
    def test_ragged_padding_and_lengths(self):
        rows = [np.arange(3) + 1j, np.arange(5), np.arange(1)]
        out, lengths = stack_rows(rows)
        assert out.shape == (3, 5)
        assert np.array_equal(lengths, [3, 5, 1])
        for i, row in enumerate(rows):
            assert np.array_equal(out[i, :lengths[i]], np.asarray(row))
            assert np.all(out[i, lengths[i]:] == 0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            stack_rows([])


class TestBatchedMatchedSampler:
    def test_matches_scalar_loop(self, shaper, rng):
        padded, origin = _lane_waveforms(shaper, rng, 6, 160)
        starts = shaper.delay + rng.uniform(-0.5, 0.5, 6)
        count = 150
        fast = BatchedMatchedSampler(shaper).sample(
            padded, origin, starts, count)
        ref = reference.batched_matched_sampler_loop(
            shaper, padded, origin, starts, count)
        np.testing.assert_allclose(fast, ref, atol=1e-12, rtol=0)

    def test_batch_of_one_matches_batch_of_n(self, shaper, rng):
        padded, origin = _lane_waveforms(shaper, rng, 5, 96)
        starts = shaper.delay + rng.uniform(-0.5, 0.5, 5)
        batched = BatchedMatchedSampler(shaper)
        full = batched.sample(padded, origin, starts, 90)
        for lane in range(5):
            single = batched.sample(padded[lane:lane + 1], origin,
                                    starts[lane:lane + 1], 90)
            np.testing.assert_array_equal(full[lane], single[0])

    def test_window_escape_rejected(self, shaper, rng):
        padded, origin = _lane_waveforms(shaper, rng, 2, 32)
        starts = np.full(2, float(shaper.delay))
        with pytest.raises(ConfigurationError):
            BatchedMatchedSampler(shaper).sample(
                padded, origin, starts, 10_000)

    def test_zero_count(self, shaper):
        out = BatchedMatchedSampler(shaper).sample(
            np.zeros((3, 200), complex), 50, np.zeros(3), 0)
        assert out.shape == (3, 0)


def _rotated_lanes(rng, n_lanes, length, constellation=BPSK):
    bits = rng.integers(0, 2,
                        (n_lanes, length * constellation.bits_per_symbol))
    clean = np.stack([constellation.modulate(row) for row in bits])
    phase0 = rng.uniform(-0.8, 0.8, n_lanes)
    freq = rng.uniform(-2e-3, 2e-3, n_lanes)
    ramp = phase0[:, None] + freq[:, None] * np.arange(length)
    noisy = clean * np.exp(1j * ramp) + 0.05 * (
        rng.normal(size=(n_lanes, length))
        + 1j * rng.normal(size=(n_lanes, length)))
    return clean, noisy


class TestBatchedPhaseTracker:
    def _make(self, n_lanes, rng, enabled=True):
        return BatchedPhaseTracker(
            kp=0.08, ki=0.004,
            phase=rng.uniform(-0.3, 0.3, n_lanes),
            freq=rng.uniform(-1e-3, 1e-3, n_lanes),
            enabled=enabled)

    @pytest.mark.parametrize("mode", ["decision", "data_aided", "coast"])
    def test_matches_scalar_loop(self, rng, mode):
        clean, noisy = _rotated_lanes(rng, 8, 220)
        batched = self._make(8, rng, enabled=mode != "coast")
        phase0 = batched.phase.copy()
        freq0 = batched.freq.copy()
        known = clean if mode == "data_aided" else None
        soft, dec, phases = batched.process(noisy, BPSK, known=known)
        if mode == "coast":
            # The disabled tracker is a closed-form ramp; reproduce it.
            ramp = phase0[:, None] + freq0[:, None] * np.arange(220)
            np.testing.assert_allclose(phases, ramp, atol=TOL, rtol=0)
            return
        r_soft, r_dec, r_phases = reference.batched_phase_tracker_loop(
            0.08, 0.004, phase0, freq0, noisy, BPSK, known=known)
        np.testing.assert_array_equal(dec, r_dec)
        np.testing.assert_allclose(phases, r_phases, atol=TOL, rtol=0)
        np.testing.assert_allclose(soft, r_soft, atol=TOL, rtol=0)

    def test_final_state_matches_scalar_loop(self, rng):
        clean, noisy = _rotated_lanes(rng, 6, 180)
        batched = self._make(6, rng)
        phase0 = batched.phase.copy()
        freq0 = batched.freq.copy()
        batched.process(noisy, BPSK)
        from repro.phy.tracking import PhaseTracker
        for lane in range(6):
            tracker = PhaseTracker(kp=0.08, ki=0.004,
                                   phase=float(phase0[lane]),
                                   freq=float(freq0[lane]))
            tracker.process(noisy[lane], BPSK)
            assert batched.phase[lane] == pytest.approx(tracker.phase,
                                                        abs=TOL)
            assert batched.freq[lane] == pytest.approx(tracker.freq,
                                                       abs=TOL)

    def test_non_bpsk_replays_scalar_exactly(self, rng):
        """Non-BPSK decision-directed lanes take the scalar-replay path;
        outputs must still equal the per-lane loop bit-for-bit."""
        clean, noisy = _rotated_lanes(rng, 4, 120, QPSK)
        batched = self._make(4, rng)
        phase0 = batched.phase.copy()
        freq0 = batched.freq.copy()
        soft, dec, phases = batched.process(noisy, QPSK)
        r_soft, r_dec, r_phases = reference.batched_phase_tracker_loop(
            0.08, 0.004, phase0, freq0, noisy, QPSK)
        np.testing.assert_array_equal(dec, r_dec)
        np.testing.assert_allclose(phases, r_phases, atol=1e-12, rtol=0)

    @given(st.integers(0, 2**16), st.integers(1, 7))
    @settings(max_examples=12)
    def test_batch_of_n_equals_singles(self, seed, n_lanes):
        """Tracked phases of a lane are independent of its batch mates."""
        rng = np.random.default_rng(seed)
        _, noisy = _rotated_lanes(rng, n_lanes, 150)
        batched = self._make(n_lanes, np.random.default_rng(seed + 1))
        phase0 = batched.phase.copy()
        freq0 = batched.freq.copy()
        soft, dec, phases = batched.process(noisy, BPSK)
        for lane in range(n_lanes):
            single = BatchedPhaseTracker(
                kp=0.08, ki=0.004, phase=phase0[lane:lane + 1],
                freq=freq0[lane:lane + 1])
            s_soft, s_dec, s_phases = single.process(
                noisy[lane:lane + 1], BPSK)
            np.testing.assert_array_equal(dec[lane], s_dec[0])
            np.testing.assert_allclose(phases[lane], s_phases[0],
                                       atol=TOL, rtol=0)
            assert batched.phase[lane] == pytest.approx(
                single.phase[0], abs=TOL)

    def test_shape_validation(self, rng):
        batched = self._make(3, rng)
        with pytest.raises(ConfigurationError):
            batched.process(np.zeros((2, 10), complex), BPSK)
        with pytest.raises(ConfigurationError):
            batched.process(np.zeros((3, 10), complex), BPSK,
                            known=np.zeros((3, 9), complex))
        with pytest.raises(ConfigurationError):
            batched.advance(-1)


class TestBatchedViterbi:
    def test_matches_scalar_loop_exactly(self, rng):
        code = ConvolutionalCode()
        bits = np.stack([random_bits(96, rng) for _ in range(7)])
        coded = np.stack([code.encode(row) for row in bits])
        soft = (1.0 - 2.0 * coded.astype(float)
                + rng.normal(scale=0.45, size=coded.shape))
        for terminated in (True, False):
            fast = code.decode_soft_batch(soft, terminated=terminated)
            ref = reference.batched_viterbi_loop(code, soft,
                                                 terminated=terminated)
            assert np.array_equal(fast, ref)

    def test_batch_of_one_equals_unbatched(self, rng):
        code = ConvolutionalCode()
        coded = code.encode(random_bits(120, rng))
        soft = (1.0 - 2.0 * coded.astype(float)
                + rng.normal(scale=0.4, size=coded.size))
        assert np.array_equal(code.decode_soft_batch(soft[None, :])[0],
                              code.decode_soft(soft))

    def test_empty_and_validation(self):
        code = ConvolutionalCode()
        assert code.decode_soft_batch(
            np.zeros((3, 0))).shape == (3, 0)
        with pytest.raises(ConfigurationError):
            code.decode_soft_batch(np.zeros(8))
        with pytest.raises(ConfigurationError):
            code.decode_soft_batch(np.zeros((2, 7)))


def _equal_length_captures(preamble, shaper, seeds, payload_bits=80):
    """One single-sender capture per seed, all with identical geometry."""
    captures = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        frame = Frame.make(random_bits(payload_bits, rng), src=1,
                           preamble=preamble)
        params = ChannelParams(
            gain=1.2 * np.exp(1j * rng.uniform(0, 2 * np.pi)),
            freq_offset=float(rng.uniform(-3e-3, 3e-3)),
            sampling_offset=float(rng.uniform(0, 1)))
        captures.append(synthesize(
            [Transmission.from_symbols(frame.symbols, shaper, params,
                                       24, "A")],
            0.05, rng, leading=8, tail=32))
    return captures


class TestBatchedSynchronizer:
    @pytest.fixture
    def sync(self, preamble, shaper):
        return Synchronizer(preamble, shaper, threshold=0.3)

    @pytest.fixture
    def lanes(self, preamble, shaper):
        captures = _equal_length_captures(preamble, shaper,
                                          range(100, 106))
        return np.stack([c.samples for c in captures]), captures

    def test_correlate_batch_matches_scalar(self, sync, lanes):
        stacked, _ = lanes
        freqs = np.linspace(-2e-3, 2e-3, stacked.shape[0])
        batch = sync.correlate_batch(stacked, coarse_freqs=freqs)
        scale = np.abs(batch).max()
        for lane in range(stacked.shape[0]):
            scalar = sync.correlate(stacked[lane], float(freqs[lane]))
            np.testing.assert_allclose(batch[lane], scalar,
                                       atol=TOL * scale, rtol=0)

    def test_scores_batch_matches_scalar(self, sync, lanes):
        stacked, _ = lanes
        batch = sync.correlation_scores_batch(stacked)
        for lane in range(stacked.shape[0]):
            scalar = sync.correlation_scores(stacked[lane])
            np.testing.assert_allclose(batch[lane], scalar, atol=1e-7,
                                       rtol=0)

    def test_detect_batch_peaks_identical(self, sync, lanes):
        stacked, _ = lanes
        batch = sync.detect_batch(stacked)
        for lane in range(stacked.shape[0]):
            scalar = sync.detect(stacked[lane])
            assert [p.position for p in batch[lane]] \
                == [p.position for p in scalar]
            for got, ref in zip(batch[lane], scalar):
                assert got.score == pytest.approx(ref.score, abs=TOL)
                assert got.value == pytest.approx(ref.value, abs=TOL)

    @pytest.mark.parametrize("refine_freq", [False, True])
    def test_acquire_batch_matches_scalar(self, sync, lanes, refine_freq):
        stacked, captures = lanes
        positions = np.array([c.transmissions[0].symbol0
                              for c in captures])
        estimates = sync.acquire_batch(
            stacked, positions, noise_power=0.05,
            refine_freq=refine_freq)
        for lane, est in enumerate(estimates):
            ref = sync.acquire(stacked[lane], int(positions[lane]),
                               noise_power=0.05,
                               refine_freq=refine_freq)
            assert est.sampling_offset == pytest.approx(
                ref.sampling_offset, abs=TOL)
            assert est.freq_offset == pytest.approx(ref.freq_offset,
                                                    abs=1e-12)
            assert est.gain == pytest.approx(ref.gain, abs=TOL)
            assert est.snr_db == pytest.approx(ref.snr_db, abs=1e-6)

    def test_single_lane_promotion(self, sync, lanes):
        stacked, _ = lanes
        promoted = sync.correlate_batch(stacked[0])
        assert promoted.shape[0] == 1
        with pytest.raises(ConfigurationError):
            sync.correlate_batch(np.zeros((2, 3, 4), complex))


class TestSynthesizeBatch:
    def _trial(self, preamble, shaper, seed, n_bits=64, offset=40):
        rng = np.random.default_rng(seed)
        frame = Frame.make(random_bits(n_bits, rng), src=1,
                           preamble=preamble)
        params = ChannelParams(
            gain=1.0 + 0.3j,
            freq_offset=1e-3,
            sampling_offset=0.3,
            phase_noise_std=1e-3)
        return [Transmission.from_symbols(frame.symbols, shaper, params,
                                          offset, "A")]

    def test_sample_identical_to_scalar(self, preamble, shaper):
        seeds = [11, 12, 13]
        batch = [self._trial(preamble, shaper, s) for s in seeds]
        stacked, captures = synthesize_batch(
            batch, 0.5, [np.random.default_rng(1000 + s) for s in seeds],
            tail=24, leading=8)
        for i, seed in enumerate(seeds):
            scalar = synthesize(self._trial(preamble, shaper, seed), 0.5,
                                np.random.default_rng(1000 + seed),
                                tail=24, leading=8)
            assert np.array_equal(captures[i].samples, scalar.samples)
            assert np.array_equal(captures[i].clean_components[0],
                                  scalar.clean_components[0])
            assert captures[i].transmissions[0].symbol0 \
                == scalar.transmissions[0].symbol0

    def test_rows_are_zero_copy_views(self, preamble, shaper):
        batch = [self._trial(preamble, shaper, s) for s in (1, 2)]
        stacked, captures = synthesize_batch(
            batch, 0.1, [np.random.default_rng(s) for s in (1, 2)])
        for capture in captures:
            assert capture.samples.base is stacked

    def test_geometry_validation(self, preamble, shaper):
        base = self._trial(preamble, shaper, 1)
        with pytest.raises(ConfigurationError):
            synthesize_batch([], 0.1, [])
        with pytest.raises(ConfigurationError):
            synthesize_batch([base], 0.1, [])  # rng count mismatch
        shifted = self._trial(preamble, shaper, 2, offset=41)
        with pytest.raises(ConfigurationError):
            synthesize_batch([base, shifted], 0.1,
                             [np.random.default_rng(s) for s in (1, 2)])
        longer = self._trial(preamble, shaper, 2, n_bits=80)
        with pytest.raises(ConfigurationError):
            synthesize_batch([base, longer], 0.1,
                             [np.random.default_rng(s) for s in (1, 2)])
        two_tx = base + self._trial(preamble, shaper, 3, offset=90)
        with pytest.raises(ConfigurationError):
            synthesize_batch([base, two_tx], 0.1,
                             [np.random.default_rng(s) for s in (1, 2)])
