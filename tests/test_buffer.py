"""Collision buffer tests (§4.2.2 storage behaviour)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.correlation import CorrelationPeak
from repro.receiver.buffer import CollisionBuffer, CollisionRecord


def peak(position):
    return CorrelationPeak(position=position, fine_offset=0.0,
                           value=1.0 + 0j, score=0.9)


class TestBuffer:
    def test_fifo_capacity(self):
        buffer = CollisionBuffer(capacity=2)
        for i in range(3):
            buffer.add(np.ones(4, complex), [peak(0), peak(10 + i)])
        assert len(buffer) == 2
        offsets = [r.offset for r in buffer]
        assert offsets == [11, 12]  # the oldest record was evicted

    def test_newest_first(self):
        buffer = CollisionBuffer(capacity=3)
        for i in range(3):
            buffer.add(np.ones(4, complex), [peak(0), peak(10 + i)],
                       meta={"i": i})
        order = [r.meta["i"] for r in buffer.newest_first()]
        assert order == [2, 1, 0]

    def test_remove_and_clear(self):
        buffer = CollisionBuffer()
        record = buffer.add(np.ones(4, complex), [peak(0), peak(5)])
        assert buffer.remove(record) is True
        assert len(buffer) == 0
        # A second remove is a no-op but must *report* the miss — callers
        # assert on it to surface double-remove logic errors.
        assert buffer.remove(record) is False
        buffer.add(np.ones(4, complex), [peak(0), peak(5)])
        buffer.clear()
        assert len(buffer) == 0

    def test_remove_scans_past_other_records(self):
        """Regression: removing a record stored *behind* others used to
        fail silently — the dataclass-generated __eq__ compared sample
        arrays and raised numpy's ambiguous-truth ValueError, which the
        old code swallowed. Records now compare by identity."""
        buffer = CollisionBuffer(capacity=4)
        buffer.add(np.ones(4, complex), [peak(0), peak(5)])
        target = buffer.add(2 * np.ones(4, complex), [peak(0), peak(7)])
        buffer.add(3 * np.ones(4, complex), [peak(0), peak(9)])
        assert buffer.remove(target) is True
        assert len(buffer) == 2
        assert all(r is not target for r in buffer)

    def test_prune(self):
        buffer = CollisionBuffer(capacity=4)
        for i in range(3):
            buffer.add(np.ones(4, complex), [peak(0), peak(5 + i)],
                       meta={"rx": i})
        dropped = buffer.prune(lambda r: r.meta["rx"] >= 2)
        assert dropped == 2
        assert [r.meta["rx"] for r in buffer] == [2]
        assert buffer.prune(lambda r: True) == 0

    def test_sequence_increments(self):
        buffer = CollisionBuffer()
        r1 = buffer.add(np.ones(4, complex), [peak(0)])
        r2 = buffer.add(np.ones(4, complex), [peak(0)])
        assert r2.sequence == r1.sequence + 1

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            CollisionBuffer(capacity=0)


class TestRecord:
    def test_offset(self):
        record = CollisionRecord(np.ones(4, complex),
                                 [peak(7), peak(30)])
        assert record.offset == 23

    def test_offset_requires_two_peaks(self):
        record = CollisionRecord(np.ones(4, complex), [peak(7)])
        with pytest.raises(ConfigurationError):
            _ = record.offset
