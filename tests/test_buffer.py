"""Collision buffer tests (§4.2.2 storage behaviour)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.correlation import CorrelationPeak
from repro.receiver.buffer import CollisionBuffer, CollisionRecord


def peak(position):
    return CorrelationPeak(position=position, fine_offset=0.0,
                           value=1.0 + 0j, score=0.9)


class TestBuffer:
    def test_fifo_capacity(self):
        buffer = CollisionBuffer(capacity=2)
        for i in range(3):
            buffer.add(np.ones(4, complex), [peak(0), peak(10 + i)])
        assert len(buffer) == 2
        offsets = [r.offset for r in buffer]
        assert offsets == [11, 12]  # the oldest record was evicted

    def test_newest_first(self):
        buffer = CollisionBuffer(capacity=3)
        for i in range(3):
            buffer.add(np.ones(4, complex), [peak(0), peak(10 + i)],
                       meta={"i": i})
        order = [r.meta["i"] for r in buffer.newest_first()]
        assert order == [2, 1, 0]

    def test_remove_and_clear(self):
        buffer = CollisionBuffer()
        record = buffer.add(np.ones(4, complex), [peak(0), peak(5)])
        buffer.remove(record)
        assert len(buffer) == 0
        buffer.remove(record)  # idempotent
        buffer.add(np.ones(4, complex), [peak(0), peak(5)])
        buffer.clear()
        assert len(buffer) == 0

    def test_sequence_increments(self):
        buffer = CollisionBuffer()
        r1 = buffer.add(np.ones(4, complex), [peak(0)])
        r2 = buffer.add(np.ones(4, complex), [peak(0)])
        assert r2.sequence == r1.sequence + 1

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            CollisionBuffer(capacity=0)


class TestRecord:
    def test_offset(self):
        record = CollisionRecord(np.ones(4, complex),
                                 [peak(7), peak(30)])
        assert record.offset == 23

    def test_offset_requires_two_peaks(self):
        record = CollisionRecord(np.ones(4, complex), [peak(7)])
        with pytest.raises(ConfigurationError):
            _ = record.offset
