"""Collision buffer tests (§4.2.2 storage, §4.5 set matching)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.correlation import CorrelationPeak
from repro.receiver.buffer import CollisionBuffer, CollisionRecord, gaps_close


def peak(position):
    return CorrelationPeak(position=position, fine_offset=0.0,
                           value=1.0 + 0j, score=0.9)


class TestBuffer:
    def test_fifo_capacity(self):
        buffer = CollisionBuffer(capacity=2)
        for i in range(3):
            buffer.add(np.ones(4, complex), [peak(0), peak(10 + i)])
        assert len(buffer) == 2
        offsets = [r.offset for r in buffer]
        assert offsets == [11, 12]  # the oldest record was evicted

    def test_newest_first(self):
        buffer = CollisionBuffer(capacity=3)
        for i in range(3):
            buffer.add(np.ones(4, complex), [peak(0), peak(10 + i)],
                       meta={"i": i})
        order = [r.meta["i"] for r in buffer.newest_first()]
        assert order == [2, 1, 0]

    def test_remove_and_clear(self):
        buffer = CollisionBuffer()
        record = buffer.add(np.ones(4, complex), [peak(0), peak(5)])
        assert buffer.remove(record) is True
        assert len(buffer) == 0
        # A second remove is a no-op but must *report* the miss — callers
        # assert on it to surface double-remove logic errors.
        assert buffer.remove(record) is False
        buffer.add(np.ones(4, complex), [peak(0), peak(5)])
        buffer.clear()
        assert len(buffer) == 0

    def test_remove_scans_past_other_records(self):
        """Regression: removing a record stored *behind* others used to
        fail silently — the dataclass-generated __eq__ compared sample
        arrays and raised numpy's ambiguous-truth ValueError, which the
        old code swallowed. Records now compare by identity."""
        buffer = CollisionBuffer(capacity=4)
        buffer.add(np.ones(4, complex), [peak(0), peak(5)])
        target = buffer.add(2 * np.ones(4, complex), [peak(0), peak(7)])
        buffer.add(3 * np.ones(4, complex), [peak(0), peak(9)])
        assert buffer.remove(target) is True
        assert len(buffer) == 2
        assert all(r is not target for r in buffer)

    def test_prune(self):
        buffer = CollisionBuffer(capacity=4)
        for i in range(3):
            buffer.add(np.ones(4, complex), [peak(0), peak(5 + i)],
                       meta={"rx": i})
        dropped = buffer.prune(lambda r: r.meta["rx"] >= 2)
        assert dropped == 2
        assert [r.meta["rx"] for r in buffer] == [2]
        assert buffer.prune(lambda r: True) == 0

    def test_sequence_increments(self):
        buffer = CollisionBuffer()
        r1 = buffer.add(np.ones(4, complex), [peak(0)])
        r2 = buffer.add(np.ones(4, complex), [peak(0)])
        assert r2.sequence == r1.sequence + 1

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            CollisionBuffer(capacity=0)


class TestRecord:
    def test_offset(self):
        record = CollisionRecord(np.ones(4, complex),
                                 [peak(7), peak(30)])
        assert record.offset == 23

    def test_offset_requires_two_peaks(self):
        record = CollisionRecord(np.ones(4, complex), [peak(7)])
        with pytest.raises(ConfigurationError):
            _ = record.offset

    def test_gaps_generalize_offset(self):
        record = CollisionRecord(np.ones(4, complex),
                                 [peak(7), peak(30), peak(100)])
        assert record.n_peaks == 3
        assert record.gaps == (23, 70)
        pair = CollisionRecord(np.ones(4, complex), [peak(7), peak(30)])
        assert pair.gaps == (pair.offset,)

    def test_gaps_close_is_the_degenerate_check(self):
        a = CollisionRecord(np.ones(4, complex),
                            [peak(0), peak(50), peak(120)])
        near = CollisionRecord(np.ones(4, complex),
                               [peak(10), peak(61), peak(131)])
        far = CollisionRecord(np.ones(4, complex),
                              [peak(0), peak(80), peak(120)])
        pair = CollisionRecord(np.ones(4, complex), [peak(0), peak(50)])
        assert gaps_close(a, near)          # same gap signature
        assert not gaps_close(a, far)       # one gap differs
        assert not gaps_close(a, pair)      # different packet counts


class TestSetMatcher:
    """The §4.5 collision-set matcher: cached link scores + components."""

    def test_link_score_cached_per_pair(self):
        buffer = CollisionBuffer(capacity=4)
        a = buffer.add(np.ones(8, complex), [peak(0), peak(3)])
        b = buffer.add(np.ones(8, complex), [peak(0), peak(5)])
        calls = []

        def scorer(x, y):
            calls.append((x.sequence, y.sequence))
            return 0.9

        assert buffer.link_score(a, b, scorer) == 0.9
        assert buffer.link_score(a, b, scorer) == 0.9
        assert buffer.link_score(b, a, scorer) == 0.9  # symmetric key
        assert len(calls) == 1

    def test_link_score_caches_unscoreable(self):
        buffer = CollisionBuffer(capacity=4)
        a = buffer.add(np.ones(8, complex), [peak(0), peak(3)])
        b = buffer.add(np.ones(8, complex), [peak(0), peak(5)])
        calls = []

        def scorer(x, y):
            calls.append(1)
            raise ConfigurationError("short alignment")

        assert buffer.link_score(a, b, scorer) is None
        assert buffer.link_score(a, b, scorer) is None
        assert len(calls) == 1

    def test_cache_dropped_with_record(self):
        """Link scores must not outlive either record — a long session
        would otherwise leak one entry per historical pair."""
        buffer = CollisionBuffer(capacity=2)
        a = buffer.add(np.ones(8, complex), [peak(0), peak(3)])
        b = buffer.add(np.ones(8, complex), [peak(0), peak(5)])
        buffer.link_score(a, b, lambda x, y: 0.5)
        assert buffer._links
        buffer.add(np.ones(8, complex), [peak(0), peak(7)])  # evicts a
        assert not buffer._links
        buffer.remove(b)
        assert not buffer._links

    def test_component_transitive_chain(self):
        """c3 links c2 directly and c1 only *through* c2: the component
        still assembles all of them (the union-find earning its keep)."""
        buffer = CollisionBuffer(capacity=4)
        c1 = buffer.add(np.ones(8, complex), [peak(0), peak(10), peak(40)])
        c2 = buffer.add(np.ones(8, complex), [peak(0), peak(20), peak(50)])
        c3 = buffer.add(np.ones(8, complex), [peak(0), peak(30), peak(60)])
        links = {frozenset((c1.sequence, c2.sequence)): 0.8,
                 frozenset((c2.sequence, c3.sequence)): 0.8,
                 frozenset((c1.sequence, c3.sequence)): 0.05}

        def scorer(a, b):
            return links[frozenset((a.sequence, b.sequence))]

        got = buffer.component([c3], scorer, threshold=0.25)
        assert got == [c2, c1]              # newest first, seed excluded

    def test_component_excludes_unlinked(self):
        buffer = CollisionBuffer(capacity=4)
        c1 = buffer.add(np.ones(8, complex), [peak(0), peak(10)])
        c2 = buffer.add(np.ones(8, complex), [peak(0), peak(20)])
        other = buffer.add(np.ones(8, complex), [peak(0), peak(30)])
        links = {frozenset((c1.sequence, c2.sequence)): 0.9}

        def scorer(a, b):
            return links.get(frozenset((a.sequence, b.sequence)), 0.0)

        assert buffer.component([c2], scorer, threshold=0.25) == [c1]
        assert buffer.component([other], scorer, threshold=0.25) == []

    def test_component_skips_degenerate_links(self):
        """Identical-gap records never link: the §4.5 degenerate pair is
        undecodable, so it must not glue components together."""
        buffer = CollisionBuffer(capacity=4)
        buffer.add(np.ones(8, complex), [peak(0), peak(10)])
        c2 = buffer.add(np.ones(8, complex), [peak(5), peak(15)])

        def scorer(a, b):  # would link everything if consulted
            return 1.0

        assert buffer.component([c2], scorer, threshold=0.25) == []
