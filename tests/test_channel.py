"""Channel model tests (Eq. 3.1 and the §3.1 impairments)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.channel import Channel, ChannelParams
from repro.phy.isi import default_isi_taps
from repro.phy.noise import signal_power


class TestParams:
    def test_from_snr(self):
        p = ChannelParams.from_snr_db(10.0)
        assert abs(p.gain) ** 2 == pytest.approx(10.0)

    def test_freq_offset_bound(self):
        with pytest.raises(ConfigurationError):
            ChannelParams(freq_offset=0.6)

    def test_negative_phase_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelParams(phase_noise_std=-0.1)

    def test_negative_evm_rejected(self):
        with pytest.raises(ConfigurationError):
            ChannelParams(tx_evm=-0.1)


class TestApply:
    def test_gain_and_phase(self, rng):
        p = ChannelParams(gain=2.0 * np.exp(1j * 0.7))
        x = np.ones(100, complex)
        y = Channel(p, rng).apply(x)
        assert np.allclose(y, 2.0 * np.exp(1j * 0.7))

    def test_freq_offset_ramp(self, rng):
        p = ChannelParams(freq_offset=1e-3)
        x = np.ones(200, complex)
        y = Channel(p, rng).apply(x, start_sample=50)
        n = np.arange(50, 250)
        assert np.allclose(y, np.exp(2j * np.pi * 1e-3 * n), atol=1e-9)

    def test_start_sample_phase_coherence(self, rng):
        """Two segments with consecutive start_samples form one ramp."""
        p = ChannelParams(freq_offset=2e-3)
        x = np.ones(100, complex)
        full = Channel(p, rng).apply(x, start_sample=0)
        part2 = Channel(p, rng).apply(x[60:], start_sample=60)
        assert np.allclose(full[60:], part2, atol=1e-9)

    def test_phase_noise_is_random_walk(self):
        p = ChannelParams(phase_noise_std=0.01)
        x = np.ones(5000, complex)
        y = Channel(p, np.random.default_rng(0)).apply(x)
        phases = np.unwrap(np.angle(y))
        increments = np.diff(phases)
        assert np.std(increments) == pytest.approx(0.01, rel=0.1)

    def test_tx_evm_adds_proportional_distortion(self):
        p = ChannelParams(gain=3.0, tx_evm=0.1)
        x = np.ones(20_000, complex)
        y = Channel(p, np.random.default_rng(0)).apply(x)
        error = y / 3.0 - x
        assert signal_power(error) == pytest.approx(0.01, rel=0.1)

    def test_isi_spreads_energy(self, rng):
        p = ChannelParams(isi_taps=tuple(default_isi_taps(0.5)))
        x = np.zeros(32, complex)
        x[16] = 1.0
        y = Channel(p, rng).apply(x)
        assert np.count_nonzero(np.abs(y) > 0.01) > 1

    def test_empty_input(self, rng):
        assert Channel(ChannelParams(), rng).apply([]).size == 0


class TestReconstruct:
    def test_reconstruct_matches_apply_without_randomness(self, rng):
        p = ChannelParams(gain=1.5 * np.exp(-1j * 0.3), freq_offset=5e-4,
                          sampling_offset=0.4,
                          isi_taps=tuple(default_isi_taps(0.2)))
        x = np.exp(1j * np.linspace(0, 3, 100))
        ch = Channel(p, rng)
        assert np.allclose(ch.apply(x, 10), ch.reconstruct(x, 10),
                           atol=1e-12)

    def test_reconstruct_excludes_phase_noise_and_evm(self):
        p = ChannelParams(phase_noise_std=0.05, tx_evm=0.05)
        x = np.ones(100, complex)
        ch = Channel(p, np.random.default_rng(3))
        applied = ch.apply(x)
        reconstructed = ch.reconstruct(x)
        assert not np.allclose(applied, reconstructed)
        assert np.allclose(reconstructed, x)
