"""Integration: convolutionally-coded payloads over ZigZag collisions.

The §6(a) pipeline end to end: encode payload -> frame -> collide twice ->
ZigZag decode -> soft-decision Viterbi over the MRC-combined payload
symbols. At SNRs where uncoded ZigZag still leaves residual bit errors,
the coded pipeline recovers the payload exactly.
"""

import numpy as np
import pytest

from repro.phy.channel import ChannelParams
from repro.phy.coding.iterative import decode_coded_soft, encode_for_zigzag
from repro.phy.constellation import BPSK
from repro.phy.frame import HEADER_BITS, Frame, descramble_soft_bpsk
from repro.phy.medium import Transmission, synthesize
from repro.phy.sync import Synchronizer
from repro.receiver.frontend import StreamConfig
from repro.utils.bits import random_bits
from repro.utils.rng import make_rng
from repro.zigzag.decoder import ZigZagPairDecoder
from repro.zigzag.engine import PacketSpec, PlacementParams


def coded_collision_pair(rng, preamble, shaper, snr_db, payload_bits=120):
    payloads = {n: random_bits(payload_bits, rng) for n in ("A", "B")}
    frames = {n: Frame.make(encode_for_zigzag(payloads[n]),
                            src=i + 1, preamble=preamble)
              for i, n in enumerate(payloads)}
    amp = np.sqrt(10 ** (snr_db / 10))
    params = {n: ChannelParams(
        gain=amp * np.exp(1j * rng.uniform(0, 2 * np.pi)),
        freq_offset=float(rng.uniform(-4e-3, 4e-3)),
        sampling_offset=float(rng.uniform(0, 1)),
        phase_noise_std=1e-3) for n in payloads}
    captures = []
    for offset in (160, 64):
        captures.append(synthesize(
            [Transmission.from_symbols(frames["A"].symbols, shaper,
                                       params["A"], 0, "A"),
             Transmission.from_symbols(frames["B"].symbols, shaper,
                                       params["B"], offset, "B")],
            1.0, rng, leading=8, tail=40))
    sync = Synchronizer(preamble, shaper, threshold=0.3)
    placements = []
    for ci, capture in enumerate(captures):
        for t in capture.transmissions:
            est = sync.acquire(capture.samples, t.symbol0,
                               coarse_freq=params[t.label].freq_offset,
                               noise_power=1.0)
            placements.append(PlacementParams(
                t.label, ci, t.symbol0 + est.sampling_offset, est))
    specs = {n: PacketSpec(n, frames[n].n_symbols, BPSK) for n in payloads}
    return captures, frames, payloads, specs, placements


class TestCodedZigZag:
    @pytest.mark.parametrize("snr_db", [7.0, 9.0])
    def test_code_recovers_payload_exactly(self, preamble, shaper,
                                           stream_config, snr_db):
        recovered = 0
        total = 0
        for seed in range(3):
            rng = make_rng(700 + seed)
            captures, frames, payloads, specs, placements = \
                coded_collision_pair(rng, preamble, shaper, snr_db)
            outcome = ZigZagPairDecoder(stream_config).decode(
                [c.samples for c in captures], specs, placements)
            pre_len = len(preamble)
            for name, payload in payloads.items():
                soft = outcome.results[name].soft_symbols
                coded_region = descramble_soft_bpsk(
                    soft[pre_len + HEADER_BITS:], offset=HEADER_BITS)
                decoded = decode_coded_soft(coded_region, payload.size)
                total += 1
                if np.array_equal(decoded, payload):
                    recovered += 1
        assert recovered >= total - 1  # at most one unlucky packet

    def test_code_fixes_residual_symbol_errors(self, preamble, shaper,
                                               stream_config):
        """Find a case with residual uncoded errors and show the code
        removes them."""
        fixed_any = False
        for seed in range(6):
            rng = make_rng(880 + seed)
            captures, frames, payloads, specs, placements = \
                coded_collision_pair(rng, preamble, shaper, snr_db=6.5)
            outcome = ZigZagPairDecoder(stream_config).decode(
                [c.samples for c in captures], specs, placements)
            pre_len = len(preamble)
            for name, payload in payloads.items():
                result = outcome.results[name]
                coded_region = descramble_soft_bpsk(
                    result.soft_symbols[pre_len + HEADER_BITS:],
                    offset=HEADER_BITS)
                decoded = decode_coded_soft(coded_region, payload.size)
                if (not result.success
                        and np.array_equal(decoded, payload)):
                    fixed_any = True
        assert fixed_any
