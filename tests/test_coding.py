"""Tests for the §6(a) coding extension: conv code, Viterbi, interleaver,
and coded-over-ZigZag decoding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.phy.coding.convolutional import ConvolutionalCode
from repro.phy.coding.interleaver import BlockInterleaver
from repro.phy.coding.iterative import (
    coded_length,
    decode_coded_soft,
    encode_for_zigzag,
)
from repro.utils.bits import random_bits


CODE = ConvolutionalCode()


class TestConvolutionalCode:
    def test_rate_and_length(self):
        bits = np.array([1, 0, 1, 1], dtype=np.uint8)
        coded = CODE.encode(bits)
        assert coded.size == 2 * (4 + 6)

    def test_known_impulse_response(self):
        """A single 1 followed by the zero tail produces the generator
        polynomials' taps as output."""
        coded = CODE.encode(np.array([1], dtype=np.uint8))
        # First output pair: both generators see the input bit -> (1, 1).
        assert coded[0] == 1 and coded[1] == 1

    def test_roundtrip_noiseless(self, rng):
        bits = random_bits(120, rng)
        assert np.array_equal(CODE.decode_hard(CODE.encode(bits)), bits)

    def test_corrects_scattered_errors(self, rng):
        bits = random_bits(200, rng)
        coded = CODE.encode(bits)
        corrupted = coded.copy()
        # Flip well-separated bits: free distance 10 handles these easily.
        for position in range(5, corrupted.size, 60):
            corrupted[position] ^= 1
        assert np.array_equal(CODE.decode_hard(corrupted), bits)

    def test_soft_beats_hard(self, rng):
        """Soft-decision decoding tolerates more noise than hard."""
        bits = random_bits(300, rng)
        coded = CODE.encode(bits).astype(float)
        soft_clean = 1.0 - 2.0 * coded
        noisy = soft_clean + 0.9 * rng.standard_normal(soft_clean.size)
        soft_errors = np.count_nonzero(
            CODE.decode_soft(noisy) != bits)
        hard_bits = (noisy < 0).astype(np.uint8)
        hard_errors = np.count_nonzero(
            CODE.decode_hard(hard_bits) != bits)
        assert soft_errors <= hard_errors

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConvolutionalCode(generators=(0o7,), constraint_length=3)
        with pytest.raises(ConfigurationError):
            ConvolutionalCode(generators=(0o777, 0o5), constraint_length=3)
        with pytest.raises(ConfigurationError):
            CODE.decode_soft(np.zeros(3))

    @given(st.integers(1, 80), st.integers(0, 2**20))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, n, seed):
        bits = random_bits(n, np.random.default_rng(seed))
        assert np.array_equal(CODE.decode_hard(CODE.encode(bits)), bits)


class TestInterleaver:
    def test_roundtrip(self, rng):
        inter = BlockInterleaver(depth=8)
        data = random_bits(100, rng)
        assert np.array_equal(
            inter.deinterleave(inter.interleave(data), 100), data)

    def test_spreads_bursts(self, rng):
        inter = BlockInterleaver(depth=8)
        data = np.zeros(128, dtype=np.uint8)
        shuffled = inter.interleave(data)
        shuffled[:8] = 1  # an 8-long burst in the channel
        restored = inter.deinterleave(shuffled, 128)
        positions = np.flatnonzero(restored)
        assert positions.size == 8
        assert np.min(np.diff(positions)) >= 8  # burst fully dispersed

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BlockInterleaver(depth=0)
        with pytest.raises(ConfigurationError):
            BlockInterleaver(depth=4).deinterleave(np.zeros(7), 100)


class TestCodedZigZag:
    def test_encode_length(self):
        assert encode_for_zigzag(np.zeros(100, np.uint8)).size \
            == coded_length(100)

    def test_coded_roundtrip_clean(self, rng):
        payload = random_bits(150, rng)
        on_air = encode_for_zigzag(payload)
        soft = (2.0 * on_air.astype(float) - 1.0).astype(complex)
        decoded = decode_coded_soft(soft, 150)
        assert np.array_equal(decoded, payload)

    def test_code_cleans_zigzag_style_bursts(self, rng):
        """§6(a)'s promise: residual ZigZag errors (short bursts,
        Fig 4-4) are removed by the bit-level code."""
        payload = random_bits(200, rng)
        on_air = encode_for_zigzag(payload)
        soft = (2.0 * on_air.astype(float) - 1.0)
        soft = soft + 0.45 * rng.standard_normal(soft.size)
        # Inject a few short bursts like a zigzag subtraction hiccup.
        for start in (40, 180, 400):
            soft[start:start + 3] *= -0.5
        raw_bits = (soft > 0).astype(np.uint8)
        raw_errors = np.count_nonzero(raw_bits != on_air)
        decoded = decode_coded_soft(soft.astype(complex), 200)
        assert raw_errors > 0
        assert np.array_equal(decoded, payload)

    def test_needs_enough_soft_values(self):
        with pytest.raises(ConfigurationError):
            decode_coded_soft(np.zeros(10, complex), 100)
