"""Constellation mapping tests, including Gray-coding and conjugation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.phy.constellation import (
    BPSK,
    QAM16,
    QAM64,
    QPSK,
    get_constellation,
)

ALL = [BPSK, QPSK, QAM16, QAM64]


class TestBasics:
    def test_bpsk_matches_paper_mapping(self):
        # Ch.3: "0" -> -1, "1" -> +1.
        assert BPSK.modulate([0])[0] == -1
        assert BPSK.modulate([1])[0] == 1

    @pytest.mark.parametrize("c", ALL, ids=lambda c: c.name)
    def test_unit_average_energy(self, c):
        assert np.mean(np.abs(c.points) ** 2) == pytest.approx(1.0)

    @pytest.mark.parametrize("c", ALL, ids=lambda c: c.name)
    def test_points_distinct(self, c):
        assert len(set(np.round(c.points, 9))) == c.size

    def test_registry_lookup(self):
        assert get_constellation("qam16") is QAM16
        with pytest.raises(ConfigurationError):
            get_constellation("qam512")


class TestRoundtrip:
    @pytest.mark.parametrize("c", ALL, ids=lambda c: c.name)
    def test_all_labels_roundtrip(self, c):
        n = c.size
        bits = np.array(
            [(label >> (c.bits_per_symbol - 1 - i)) & 1
             for label in range(n) for i in range(c.bits_per_symbol)],
            dtype=np.uint8)
        symbols = c.modulate(bits)
        assert np.array_equal(c.demodulate(symbols), bits)

    @pytest.mark.parametrize("c", ALL, ids=lambda c: c.name)
    def test_roundtrip_with_small_noise(self, c, rng):
        bits = rng.integers(0, 2, 20 * c.bits_per_symbol, dtype=np.uint8)
        symbols = c.modulate(bits)
        noisy = symbols + 0.01 * (rng.standard_normal(symbols.size)
                                  + 1j * rng.standard_normal(symbols.size))
        assert np.array_equal(c.demodulate(noisy), bits)

    @given(st.lists(st.integers(0, 1), min_size=6, max_size=60))
    def test_bpsk_property_roundtrip(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        assert np.array_equal(BPSK.demodulate(BPSK.modulate(arr)), arr)


class TestGrayCoding:
    @pytest.mark.parametrize("c", [QPSK, QAM16, QAM64],
                             ids=lambda c: c.name)
    def test_nearest_neighbours_differ_by_one_bit(self, c):
        """Gray mapping: closest constellation points differ in one bit."""
        d_min = c.min_distance()
        for i in range(c.size):
            for j in range(c.size):
                if i == j:
                    continue
                if abs(c.points[i] - c.points[j]) < d_min * 1.001:
                    assert bin(i ^ j).count("1") == 1


class TestConjugate:
    @pytest.mark.parametrize("c", ALL, ids=lambda c: c.name)
    def test_conjugate_closed_point_set(self, c):
        original = set(np.round(c.points, 9))
        conjugated = set(np.round(c.conjugate().points, 9))
        assert original == conjugated

    def test_conjugate_maps_symbols(self, rng):
        bits = rng.integers(0, 2, 40, dtype=np.uint8)
        conj_symbols = np.conj(QAM16.modulate(bits))
        assert np.array_equal(QAM16.conjugate().demodulate(conj_symbols),
                              bits)


class TestErrors:
    def test_bit_count_must_divide(self):
        with pytest.raises(ConfigurationError):
            QAM16.modulate([1, 0, 1])

    def test_slice_projects_to_points(self):
        sliced = QPSK.slice_symbols([0.9 + 0.6j])
        assert sliced[0] in QPSK.points
