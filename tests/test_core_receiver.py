"""End-to-end ZigZagReceiver tests: the §5.1(d) flow control."""

import numpy as np
import pytest

from repro.core import ClientTable, ReceiverConfig, ZigZagReceiver
from repro.phy.channel import ChannelParams
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, synthesize
from repro.utils.bits import random_bits


def clean_capture(frame, shaper, rng, snr_db=14.0, freq=2e-3):
    params = ChannelParams(
        gain=np.sqrt(10 ** (snr_db / 10))
        * np.exp(1j * rng.uniform(0, 2 * np.pi)),
        freq_offset=freq, sampling_offset=float(rng.uniform(0, 1)))
    tx = Transmission.from_symbols(frame.symbols, shaper, params, 0, "x")
    return synthesize([tx], 1.0, rng, leading=8, tail=30)


def collision_capture(frames, shaper, rng, offsets, freqs, snr_db=13.0):
    txs = []
    for (name, frame), offset in zip(frames.items(), offsets):
        params = ChannelParams(
            gain=np.sqrt(10 ** (snr_db / 10))
            * np.exp(1j * rng.uniform(0, 2 * np.pi)),
            freq_offset=freqs[name],
            sampling_offset=float(rng.uniform(0, 1)),
            phase_noise_std=1e-3)
        txs.append(Transmission.from_symbols(frame.symbols, shaper, params,
                                             offset, name))
    return synthesize(txs, 1.0, rng, leading=8, tail=30)


class TestClientTable:
    def test_update_and_get(self):
        table = ClientTable()
        table.update(1, 2e-3)
        assert table.get(1) == pytest.approx(2e-3)
        assert table.get(99, default=0.0) == 0.0

    def test_ewma_smooths(self):
        table = ClientTable(smoothing=0.5)
        table.update(1, 0.0)
        table.update(1, 1e-3)
        assert table.get(1) == pytest.approx(5e-4)

    def test_candidates_always_nonempty(self):
        table = ClientTable()
        assert table.candidates() == [0.0]
        table.update(1, 3e-3)
        assert 3e-3 in table.candidates()


class TestReceiverFlow:
    def test_clean_packet_decoded_and_learned(self, preamble, shaper, rng):
        config = ReceiverConfig(preamble=preamble, shaper=shaper,
                                noise_power=1.0)
        receiver = ZigZagReceiver(config)
        frame = Frame.make(random_bits(200, rng), src=5, preamble=preamble)
        # First reception: the table has no freq estimate; send with a
        # tiny offset so blind detection works, then learn.
        cap = clean_capture(frame, shaper, rng, freq=2e-4)
        results = receiver.receive(cap.samples)
        assert len(results) == 1 and results[0].success
        assert len(receiver.clients) == 1

    def test_noise_returns_nothing(self, preamble, shaper, rng):
        receiver = ZigZagReceiver(ReceiverConfig(preamble=preamble,
                                                 shaper=shaper))
        noise = rng.standard_normal(700) + 1j * rng.standard_normal(700)
        assert receiver.receive(noise) == []

    def test_collision_stored_then_resolved_on_match(self, preamble,
                                                     shaper, rng):
        """The paper's core loop: first collision is stored; the matching
        retransmission collision resolves both packets."""
        frames = {
            "A": Frame.make(random_bits(200, rng), src=1,
                            preamble=preamble),
            "B": Frame.make(random_bits(200, rng), src=2,
                            preamble=preamble),
        }
        freqs = {"A": 3e-3, "B": -2e-3}
        config = ReceiverConfig(preamble=preamble, shaper=shaper,
                                noise_power=1.0,
                                expected_symbols=frames["A"].n_symbols)
        receiver = ZigZagReceiver(config)
        receiver.clients.update(1, freqs["A"])
        receiver.clients.update(2, freqs["B"])
        cap1 = collision_capture(frames, shaper, rng, (0, 160), freqs)
        cap2 = collision_capture(frames, shaper, rng, (0, 60), freqs)
        first = receiver.receive(cap1.samples)
        assert first == []          # stored, waiting for a match
        assert len(receiver.buffer) == 1
        second = receiver.receive(cap2.samples)
        assert len(second) == 2
        recovered = sorted(r.header.src for r in second
                           if r.success and r.header is not None)
        assert recovered == [1, 2]
        assert len(receiver.buffer) == 0

    def test_equal_offset_collisions_not_matched(self, preamble, shaper,
                                                 rng):
        frames = {
            "A": Frame.make(random_bits(200, rng), src=1,
                            preamble=preamble),
            "B": Frame.make(random_bits(200, rng), src=2,
                            preamble=preamble),
        }
        freqs = {"A": 3e-3, "B": -2e-3}
        config = ReceiverConfig(preamble=preamble, shaper=shaper,
                                noise_power=1.0,
                                expected_symbols=frames["A"].n_symbols)
        receiver = ZigZagReceiver(config)
        receiver.clients.update(1, freqs["A"])
        receiver.clients.update(2, freqs["B"])
        cap1 = collision_capture(frames, shaper, rng, (0, 100), freqs)
        cap2 = collision_capture(frames, shaper, rng, (0, 100), freqs)
        receiver.receive(cap1.samples)
        results = receiver.receive(cap2.samples)
        # Identical offsets are undecodable; the new collision is stored.
        assert results == []
        assert len(receiver.buffer) == 2
