"""End-to-end ZigZagReceiver tests: the §5.1(d) flow control."""

import numpy as np
import pytest

from repro.core import ClientTable, ReceiverConfig, ZigZagReceiver
from repro.phy.channel import ChannelParams
from repro.phy.correlation import CorrelationPeak
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, synthesize
from repro.utils.bits import random_bits


def clean_capture(frame, shaper, rng, snr_db=14.0, freq=2e-3):
    params = ChannelParams(
        gain=np.sqrt(10 ** (snr_db / 10))
        * np.exp(1j * rng.uniform(0, 2 * np.pi)),
        freq_offset=freq, sampling_offset=float(rng.uniform(0, 1)))
    tx = Transmission.from_symbols(frame.symbols, shaper, params, 0, "x")
    return synthesize([tx], 1.0, rng, leading=8, tail=30)


def collision_capture(frames, shaper, rng, offsets, freqs, snr_db=13.0):
    txs = []
    for (name, frame), offset in zip(frames.items(), offsets):
        params = ChannelParams(
            gain=np.sqrt(10 ** (snr_db / 10))
            * np.exp(1j * rng.uniform(0, 2 * np.pi)),
            freq_offset=freqs[name],
            sampling_offset=float(rng.uniform(0, 1)),
            phase_noise_std=1e-3)
        txs.append(Transmission.from_symbols(frame.symbols, shaper, params,
                                             offset, name))
    return synthesize(txs, 1.0, rng, leading=8, tail=30)


class TestClientTable:
    def test_update_and_get(self):
        table = ClientTable()
        table.update(1, 2e-3)
        assert table.get(1) == pytest.approx(2e-3)
        assert table.get(99, default=0.0) == 0.0

    def test_ewma_smooths(self):
        table = ClientTable(smoothing=0.5)
        table.update(1, 0.0)
        table.update(1, 1e-3)
        assert table.get(1) == pytest.approx(5e-4)

    def test_candidates_always_nonempty(self):
        table = ClientTable()
        assert table.candidates() == [0.0]
        table.update(1, 3e-3)
        assert 3e-3 in table.candidates()


class TestReceiverFlow:
    def test_clean_packet_decoded_and_learned(self, preamble, shaper, rng):
        config = ReceiverConfig(preamble=preamble, shaper=shaper,
                                noise_power=1.0)
        receiver = ZigZagReceiver(config)
        frame = Frame.make(random_bits(200, rng), src=5, preamble=preamble)
        # First reception: the table has no freq estimate; send with a
        # tiny offset so blind detection works, then learn.
        cap = clean_capture(frame, shaper, rng, freq=2e-4)
        results = receiver.receive(cap.samples)
        assert len(results) == 1 and results[0].success
        assert len(receiver.clients) == 1

    def test_noise_returns_nothing(self, preamble, shaper, rng):
        receiver = ZigZagReceiver(ReceiverConfig(preamble=preamble,
                                                 shaper=shaper))
        noise = rng.standard_normal(700) + 1j * rng.standard_normal(700)
        assert receiver.receive(noise) == []

    def test_collision_stored_then_resolved_on_match(self, preamble,
                                                     shaper, rng):
        """The paper's core loop: first collision is stored; the matching
        retransmission collision resolves both packets."""
        frames = {
            "A": Frame.make(random_bits(200, rng), src=1,
                            preamble=preamble),
            "B": Frame.make(random_bits(200, rng), src=2,
                            preamble=preamble),
        }
        freqs = {"A": 3e-3, "B": -2e-3}
        config = ReceiverConfig(preamble=preamble, shaper=shaper,
                                noise_power=1.0,
                                expected_symbols=frames["A"].n_symbols)
        receiver = ZigZagReceiver(config)
        receiver.clients.update(1, freqs["A"])
        receiver.clients.update(2, freqs["B"])
        cap1 = collision_capture(frames, shaper, rng, (0, 160), freqs)
        cap2 = collision_capture(frames, shaper, rng, (0, 60), freqs)
        first = receiver.receive(cap1.samples)
        assert first == []          # stored, waiting for a match
        assert len(receiver.buffer) == 1
        second = receiver.receive(cap2.samples)
        assert len(second) == 2
        recovered = sorted(r.header.src for r in second
                           if r.success and r.header is not None)
        assert recovered == [1, 2]
        assert len(receiver.buffer) == 0

    def test_equal_offset_collisions_not_matched(self, preamble, shaper,
                                                 rng):
        frames = {
            "A": Frame.make(random_bits(200, rng), src=1,
                            preamble=preamble),
            "B": Frame.make(random_bits(200, rng), src=2,
                            preamble=preamble),
        }
        freqs = {"A": 3e-3, "B": -2e-3}
        config = ReceiverConfig(preamble=preamble, shaper=shaper,
                                noise_power=1.0,
                                expected_symbols=frames["A"].n_symbols)
        receiver = ZigZagReceiver(config)
        receiver.clients.update(1, freqs["A"])
        receiver.clients.update(2, freqs["B"])
        cap1 = collision_capture(frames, shaper, rng, (0, 100), freqs)
        cap2 = collision_capture(frames, shaper, rng, (0, 100), freqs)
        receiver.receive(cap1.samples)
        results = receiver.receive(cap2.samples)
        # Identical offsets are undecodable; the new collision is stored.
        assert results == []
        assert len(receiver.buffer) == 2


def make_frames(rng, preamble, srcs=(1, 2), bits=200):
    return {f"s{src}": Frame.make(random_bits(bits, rng), src=src,
                                  preamble=preamble)
            for src in srcs}


def pair_receiver(preamble, shaper, n_symbols, freqs, **overrides):
    config = ReceiverConfig(preamble=preamble, shaper=shaper,
                            noise_power=1.0, expected_symbols=n_symbols,
                            **overrides)
    receiver = ZigZagReceiver(config)
    for src, freq in freqs.items():
        receiver.clients.update(src, freq)
    return receiver


class TestCollisionBufferLifecycle:
    """The store / match-and-remove / evict / skip paths the streaming
    session leans on (§4.2.2, §4.5)."""

    def test_store_on_no_match(self, preamble, shaper, rng):
        """Collisions of *different* packet pairs do not match: both get
        stored, nothing is decoded."""
        freqs = {1: 3e-3, 2: -2e-3, 3: 1e-3, 4: -1e-3}
        frames1 = make_frames(rng, preamble, srcs=(1, 2))
        frames2 = make_frames(rng, preamble, srcs=(3, 4))
        receiver = pair_receiver(preamble, shaper,
                                 next(iter(frames1.values())).n_symbols,
                                 freqs)
        cap1 = collision_capture(frames1, shaper, rng, (0, 160),
                                 {"s1": freqs[1], "s2": freqs[2]})
        cap2 = collision_capture(frames2, shaper, rng, (0, 60),
                                 {"s3": freqs[3], "s4": freqs[4]})
        assert receiver.receive(cap1.samples) == []
        assert receiver.receive(cap2.samples) == []
        assert len(receiver.buffer) == 2
        assert receiver.stats.collisions_stored == 2
        assert receiver.stats.zigzag_matches == 0

    def test_match_removes_record_and_counts(self, preamble, shaper, rng):
        freqs = {1: 3e-3, 2: -2e-3}
        frames = make_frames(rng, preamble)
        receiver = pair_receiver(preamble, shaper,
                                 frames["s1"].n_symbols, freqs)
        named_freqs = {"s1": freqs[1], "s2": freqs[2]}
        cap1 = collision_capture(frames, shaper, rng, (0, 160), named_freqs)
        cap2 = collision_capture(frames, shaper, rng, (0, 60), named_freqs)
        receiver.receive(cap1.samples)
        results = receiver.receive(cap2.samples)
        assert len(results) == 2
        assert len(receiver.buffer) == 0
        assert receiver.stats.zigzag_matches == 1

    def test_fifo_eviction_at_capacity(self, preamble, shaper, rng):
        """The oldest record is evicted once the buffer is full, and the
        eviction is counted."""
        freqs = {i: f for i, f in zip(range(1, 9),
                                      (3e-3, -2e-3, 1e-3, -1e-3,
                                       2e-3, -3e-3, 1.5e-3, -1.5e-3))}
        receiver = None
        first_record = None
        for pair in ((1, 2), (3, 4), (5, 6), (7, 8)):
            frames = make_frames(rng, preamble, srcs=pair)
            if receiver is None:
                receiver = pair_receiver(
                    preamble, shaper,
                    next(iter(frames.values())).n_symbols, freqs,
                    buffer_capacity=2)
            named = {n: freqs[src] for n, src in
                     zip(frames, pair)}
            receiver.receive(collision_capture(
                frames, shaper, rng, (0, 160), named).samples)
            if first_record is None and len(receiver.buffer):
                first_record = next(iter(receiver.buffer))
        assert len(receiver.buffer) == 2
        assert first_record not in list(receiver.buffer)
        assert receiver.stats.evictions_capacity >= 1

    def test_identical_offset_skipped_not_matched(self, preamble, shaper,
                                                  rng):
        """§4.5: same-offset collisions are undecodable — the receiver
        must store the new one rather than attempt the match."""
        freqs = {1: 3e-3, 2: -2e-3}
        frames = make_frames(rng, preamble)
        receiver = pair_receiver(preamble, shaper,
                                 frames["s1"].n_symbols, freqs)
        named_freqs = {"s1": freqs[1], "s2": freqs[2]}
        for _ in range(2):
            receiver.receive(collision_capture(
                frames, shaper, rng, (0, 100), named_freqs).samples)
        assert len(receiver.buffer) == 2
        assert receiver.stats.zigzag_matches == 0

    def test_age_pruning(self, preamble, shaper, rng):
        """buffer_max_age: stale records are dropped as the stream moves
        on (retransmissions arrive within a few receptions, §4.2.2)."""
        freqs = {1: 3e-3, 2: -2e-3}
        frames = make_frames(rng, preamble)
        receiver = pair_receiver(preamble, shaper,
                                 frames["s1"].n_symbols, freqs,
                                 buffer_max_age=2)
        named_freqs = {"s1": freqs[1], "s2": freqs[2]}
        receiver.receive(collision_capture(
            frames, shaper, rng, (0, 160), named_freqs).samples)
        assert len(receiver.buffer) == 1
        for _ in range(4):   # noise-only receives advance the clock
            noise = (rng.standard_normal(600)
                     + 1j * rng.standard_normal(600)) / np.sqrt(2)
            receiver.receive(noise)
        assert len(receiver.buffer) == 0
        assert receiver.stats.evictions_age == 1

    def test_short_alignment_record_skipped(self, preamble, shaper, rng):
        """Regression: a stored record whose second peak sits at the tail
        of its capture used to abort the whole receive call — match_score
        sees < 8 aligned samples and raises. It must count as 'no match'
        and the scan must continue."""
        freqs = {1: 3e-3, 2: -2e-3}
        frames = make_frames(rng, preamble)
        receiver = pair_receiver(preamble, shaper,
                                 frames["s1"].n_symbols, freqs)
        # Hand-craft a pathological record: second packet "starting"
        # three samples before the capture ends.
        short = (rng.standard_normal(400)
                 + 1j * rng.standard_normal(400)) / np.sqrt(2)
        receiver.buffer.add(short, [
            CorrelationPeak(position=0, fine_offset=0.0,
                            value=1.0 + 0j, score=0.9),
            CorrelationPeak(position=397, fine_offset=0.0,
                            value=1.0 + 0j, score=0.8)])
        named_freqs = {"s1": freqs[1], "s2": freqs[2]}
        capture = collision_capture(frames, shaper, rng, (0, 160),
                                    named_freqs)
        results = receiver.receive(capture.samples)   # must not raise
        assert results == []
        assert receiver.stats.short_alignments == 1
        assert len(receiver.buffer) == 2   # pathological + new collision
