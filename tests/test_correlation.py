"""Symbol-domain sliding-correlation tests (the §4.2.1 primitive)."""

import numpy as np
import pytest

from repro.errors import CollisionDetectError, ConfigurationError
from repro.phy.correlation import (
    find_correlation_peaks,
    normalized_sliding_correlation,
    refine_peak_position,
    sliding_correlation,
)
from repro.phy.preamble import default_preamble


class TestSlidingCorrelation:
    def test_peak_at_preamble_start(self, preamble, rng):
        signal = np.concatenate([
            np.zeros(40, complex), preamble.symbols,
            (2 * rng.integers(0, 2, 100) - 1).astype(complex),
        ])
        corr = sliding_correlation(signal, preamble)
        assert int(np.argmax(np.abs(corr))) == 40

    def test_frequency_compensation_restores_peak(self, preamble):
        f = 5e-3
        k = np.arange(len(preamble))
        signal = np.concatenate([
            np.zeros(10, complex),
            preamble.symbols * np.exp(2j * np.pi * f * k),
            np.zeros(10, complex),
        ])
        plain = np.abs(sliding_correlation(signal, preamble))
        comp = np.abs(sliding_correlation(signal, preamble, freq_offset=f))
        assert comp[10] > plain[10]
        assert comp[10] == pytest.approx(preamble.energy, rel=1e-6)

    def test_signal_too_short(self, preamble):
        with pytest.raises(CollisionDetectError):
            sliding_correlation(np.zeros(8, complex), preamble)


class TestNormalized:
    def test_score_bounded(self, preamble, rng):
        signal = np.concatenate([
            preamble.symbols * 3.0,
            (rng.standard_normal(80) + 1j * rng.standard_normal(80)),
        ])
        scores = normalized_sliding_correlation(signal, preamble)
        assert np.all(scores <= 1.0 + 1e-9)
        assert scores[0] > 0.9

    def test_power_invariance(self, preamble, rng):
        noise = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        weak = np.concatenate([0.1 * preamble.symbols, 0.1 * noise])
        strong = np.concatenate([10 * preamble.symbols, 10 * noise])
        s_weak = normalized_sliding_correlation(weak, preamble)
        s_strong = normalized_sliding_correlation(strong, preamble)
        assert s_weak[0] == pytest.approx(s_strong[0], rel=1e-9)


class TestPeakFinding:
    def test_finds_both_packets(self, preamble, rng):
        data = (2 * rng.integers(0, 2, 60) - 1).astype(complex)
        signal = np.concatenate([
            preamble.symbols, data, preamble.symbols, data,
        ]) + 0.05 * (rng.standard_normal(184)
                     + 1j * rng.standard_normal(184))
        peaks = find_correlation_peaks(signal, preamble, threshold=0.5)
        assert [p.position for p in peaks] == [0, 92]

    def test_threshold_validation(self, preamble):
        with pytest.raises(ConfigurationError):
            find_correlation_peaks(np.zeros(64, complex), preamble,
                                   threshold=0.0)

    def test_max_peaks_limit(self, preamble, rng):
        signal = np.concatenate([preamble.symbols] * 3).astype(complex)
        peaks = find_correlation_peaks(signal, preamble, threshold=0.3,
                                       max_peaks=1)
        assert len(peaks) == 1

    def test_refine_peak_degenerate_cases(self):
        flat = np.ones(5)
        assert refine_peak_position(flat, 2) == 0.0
        assert refine_peak_position(flat, 0) == 0.0
        assert refine_peak_position(flat, 4) == 0.0
