"""CRC-32 tests: known vectors, error detection, bit-level helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.phy.crc import append_crc32, crc32, crc32_bits, crc32_check, strip_crc32


class TestKnownVectors:
    def test_standard_check_value(self):
        # The canonical CRC-32 test vector.
        assert crc32(b"123456789") == 0xCBF43926

    def test_empty(self):
        assert crc32(b"") == 0x00000000

    def test_matches_zlib(self):
        import zlib
        for data in (b"hello", b"\x00" * 16, bytes(range(100))):
            assert crc32(data) == zlib.crc32(data)


class TestBitLevel:
    def test_append_and_check(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0] * 4, dtype=np.uint8)
        framed = append_crc32(bits)
        assert framed.size == bits.size + 32
        assert crc32_check(framed)

    def test_single_bit_error_detected(self, rng):
        bits = rng.integers(0, 2, 64, dtype=np.uint8)
        framed = append_crc32(bits)
        for position in (0, 17, framed.size - 1):
            corrupted = framed.copy()
            corrupted[position] ^= 1
            assert not crc32_check(corrupted)

    def test_strip_returns_payload(self):
        bits = np.array([1, 1, 0, 0] * 8, dtype=np.uint8)
        payload, ok = strip_crc32(append_crc32(bits))
        assert ok and np.array_equal(payload, bits)

    def test_too_short_rejected(self):
        with pytest.raises(ConfigurationError):
            strip_crc32(np.zeros(16, dtype=np.uint8))

    @given(st.lists(st.integers(0, 1), min_size=8, max_size=200))
    def test_roundtrip_property(self, bits):
        framed = append_crc32(np.array(bits, dtype=np.uint8))
        assert crc32_check(framed)

    @given(st.lists(st.integers(0, 1), min_size=8, max_size=100),
           st.integers(min_value=0, max_value=10_000))
    def test_burst_errors_detected(self, bits, seed):
        """Any burst of up to 32 flipped bits must be caught."""
        framed = append_crc32(np.array(bits, dtype=np.uint8))
        rng = np.random.default_rng(seed)
        start = int(rng.integers(0, framed.size))
        length = int(rng.integers(1, min(32, framed.size - start) + 1))
        corrupted = framed.copy()
        corrupted[start:start + length] ^= 1
        if not np.array_equal(corrupted, framed):
            assert not crc32_check(corrupted)

    def test_non_byte_aligned_payloads(self):
        bits = np.array([1, 0, 1], dtype=np.uint8)
        assert crc32_bits(bits).size == 32
        assert crc32_check(append_crc32(bits))
