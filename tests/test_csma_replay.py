"""Tests for the §5.2 MAC-trace -> signal-replay bridge."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mac.dcf import DcfConfig, DcfSimulator
from repro.testbed.csma import plan_from_trace


def hidden_trace(packets=6, seed=0, duration=300.0):
    sense = np.array([[True, False], [False, True]])
    sim = DcfSimulator(2, sense, DcfConfig(packet_duration_us=duration),
                       np.random.default_rng(seed))
    return sim.run(packets)


def sensing_trace(packets=6, seed=0, duration=300.0):
    sense = np.ones((2, 2), dtype=bool)
    sim = DcfSimulator(2, sense, DcfConfig(packet_duration_us=duration),
                       np.random.default_rng(seed))
    return sim.run(packets)


class TestPlanFromTrace:
    def test_hidden_pair_produces_collisions(self):
        plan = plan_from_trace(hidden_trace())
        assert len(plan.collisions) > 0

    def test_sensing_pair_mostly_clean(self):
        plan = plan_from_trace(sensing_trace())
        assert len(plan.clean) > len(plan.collisions)

    def test_offsets_start_at_zero_and_ordered(self):
        plan = plan_from_trace(hidden_trace())
        for event in plan.collisions:
            assert event.offsets_samples[0] == 0
            assert list(event.offsets_samples) \
                == sorted(event.offsets_samples)

    def test_paper_rate_is_one_sample_per_us(self):
        """500 kb/s BPSK at 2 samples/symbol: 1 us == 1 sample, so a
        20 us slot difference becomes a 20-sample offset."""
        plan = plan_from_trace(hidden_trace())
        slot_aligned = [
            off for event in plan.collisions
            for off in event.offsets_samples[1:]
        ]
        assert all(off % 20 == 0 for off in slot_aligned)

    def test_pair_filter(self):
        plan = plan_from_trace(hidden_trace())
        rounds = plan.collision_rounds_for(0, 1)
        assert rounds == plan.collisions  # only two senders exist
        assert plan.collision_rounds_for(0, 7) == []

    def test_bitrate_validation(self):
        with pytest.raises(ConfigurationError):
            plan_from_trace(hidden_trace(), bitrate_bps=0.0)

    def test_event_counts_conserved(self):
        trace = hidden_trace()
        plan = plan_from_trace(trace)
        replayed = len(plan.clean) + sum(
            event.n_senders for event in plan.collisions)
        assert replayed == len(trace.events)
