"""Geometry-derived deployments: pathloss -> SNR -> topology -> session.

Covers the :mod:`repro.testbed.deployment` derivation, the
:class:`repro.link.Topology` abstraction it feeds, the multi-cell
coordinator, and — as a fixed-seed regression — the exact hidden-pair
set a derived session ends up sensing.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.link import (
    AirConfig,
    ContinuousAir,
    LinkSession,
    MultiCellConfig,
    SessionConfig,
    StreamClient,
    Topology,
)
from repro.runner.builders import build_cell_session, build_city_session
from repro.runner.spec import ScenarioSpec
from repro.testbed.deployment import (
    Deployment,
    DeploymentConfig,
    client_name,
)
from repro.testbed.pathloss import LogDistancePathLoss
from repro.testbed.topology import SensingClass


def make_deployment(n_aps=2, n_clients=10, area_m=60.0, seed=42,
                    **kwargs) -> Deployment:
    config = DeploymentConfig(n_aps=n_aps, n_clients=n_clients,
                              area_m=area_m, **kwargs)
    return Deployment.generate(config, seed=seed)


class TestDeploymentGeneration:
    def test_shapes_and_bounds(self):
        dep = make_deployment(n_aps=3, n_clients=7, area_m=50.0)
        assert dep.ap_positions.shape == (3, 2)
        assert dep.client_positions.shape == (7, 2)
        assert dep.snr_db.shape == (10, 10)
        assert np.all(dep.client_positions >= 0.0)
        assert np.all(dep.client_positions <= 50.0)

    def test_snr_matrix_symmetric_and_clamped(self):
        dep = make_deployment()
        off = ~np.eye(dep.snr_db.shape[0], dtype=bool)
        assert np.allclose(dep.snr_db, dep.snr_db.T)
        assert np.all(dep.snr_db[off] <= dep.config.max_snr_db)
        assert np.all(np.isinf(np.diag(dep.snr_db)))

    def test_reproducible_from_seed(self):
        a, b = make_deployment(seed=5), make_deployment(seed=5)
        assert np.array_equal(a.snr_db, b.snr_db)
        assert np.array_equal(a.ap_positions, b.ap_positions)
        c = make_deployment(seed=6)
        assert not np.array_equal(a.snr_db, c.snr_db)

    def test_association_partition(self):
        dep = make_deployment()
        cells = [dep.associated_clients(a) for a in range(dep.n_aps)]
        members = [i for cell in cells for i in cell]
        assert len(members) == len(set(members))
        assert sorted(members + list(dep.unassociated_clients())) \
            == list(range(dep.n_clients))
        for ap, cell in enumerate(cells):
            for client in cell:
                assert dep.serving_ap(client) == ap
                # Association = strongest reachable link.
                snrs = [dep.ap_client_snr(a, client)
                        for a in range(dep.n_aps)]
                assert dep.ap_client_snr(ap, client) == max(snrs)
                assert max(snrs) >= dep.config.reachable_db
        for client in dep.unassociated_clients():
            assert dep.serving_ap(client) is None

    def test_interferers_out_of_cell_and_sorted(self):
        dep = make_deployment()
        for ap in range(dep.n_aps):
            own = set(dep.associated_clients(ap))
            heard = dep.interferers(ap, floor_db=-5.0)
            snrs = [snr for _, snr in heard]
            assert snrs == sorted(snrs, reverse=True)
            for client, snr in heard:
                assert client not in own
                assert snr >= -5.0
                assert snr == dep.ap_client_snr(ap, client)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            DeploymentConfig(n_aps=0)
        with pytest.raises(ConfigurationError):
            DeploymentConfig(n_clients=300)
        with pytest.raises(ConfigurationError):
            DeploymentConfig(cs_full_db=2.0, cs_none_db=2.0)
        with pytest.raises(ConfigurationError):
            # Association floor below cs_none_db could hide a client
            # from its own AP.
            DeploymentConfig(reachable_db=1.0)


class TestFixedSeedRegression:
    """Pin the full seed-42 derivation: positions -> pathloss -> sensing
    classes -> the exact hidden-pair set the session receives."""

    def test_derived_cells_pinned(self):
        dep = make_deployment(n_aps=2, n_clients=10, area_m=60.0, seed=42)
        assert [dep.serving_ap(i) for i in range(10)] \
            == [None, None, 0, None, None, 0, 0, 1, 1, None]
        cells = dep.cells()
        assert [plan.ap for plan in cells] == [0, 1]
        cell0, cell1 = cells
        assert cell0.names == ("c2", "c5", "c6")
        assert cell0.srcs == (3, 6, 7)
        assert cell0.hidden_pairs == (("c2", "c6"),)
        assert cell1.names == ("c7", "c8")
        assert cell1.hidden_pairs == ()
        assert np.allclose(cell0.snr_db,
                           (7.981461, 15.652613, 8.700486), atol=1e-5)
        mix = dep.sensing_mix()
        assert mix[SensingClass.PERFECT] == pytest.approx(0.75)
        assert mix[SensingClass.HIDDEN] == pytest.approx(0.25)

    def test_hidden_pairs_match_independent_recomputation(self):
        dep = make_deployment(n_aps=2, n_clients=10, area_m=60.0, seed=42)
        cfg = dep.config
        for plan in dep.cells():
            expected = set()
            for x in range(plan.n_clients):
                for y in range(x + 1, plan.n_clients):
                    snr = dep.client_snr(plan.clients[x], plan.clients[y])
                    if snr <= cfg.cs_none_db:
                        expected.add(frozenset((plan.names[x],
                                                plan.names[y])))
            assert {frozenset(p) for p in plan.hidden_pairs} == expected

    def test_session_receives_exact_hidden_set(self):
        """End to end: the LinkSession built from the derived cell is
        blind on exactly the derived hidden pairs, pinned by seed."""
        dep = make_deployment(n_aps=2, n_clients=10, area_m=60.0, seed=42)
        plan = dep.cells()[0]
        clients = [StreamClient(name, src, snr, 0.0)
                   for name, src, snr
                   in zip(plan.names, plan.srcs, plan.snr_db)]
        config = SessionConfig(topology=Topology.from_cell(plan),
                               n_packets=1)
        session = LinkSession(config, clients, design="zigzag",
                              rng=np.random.default_rng(0))
        names = list(plan.names)
        sense = session._sense
        hidden = {frozenset((names[i], names[j]))
                  for i in range(len(names))
                  for j in range(i + 1, len(names))
                  if not sense[i, j]}
        # Seed 42 yields no partial pairs in this cell, so the sensed
        # set equals the deterministic hidden set exactly.
        assert all(p in (0.0, 1.0)
                   for _, _, p in plan.pair_probabilities)
        assert hidden == {frozenset(("c2", "c6"))}


class TestTopology:
    def test_explicit_consumes_no_rng(self):
        rng = np.random.default_rng(3)
        state = rng.bit_generator.state["state"]["state"]
        topo = Topology.explicit(hidden_pairs=(("A", "B"),))
        sense = topo.sense_matrix(["A", "B", "C"], rng)
        assert rng.bit_generator.state["state"]["state"] == state
        assert not sense[0, 1] and not sense[1, 0]
        assert sense[0, 2] and sense[1, 2]

    def test_probabilistic_draws_every_pair(self):
        # Bit-compat contract: one uniform per i<j pair, even at the
        # degenerate endpoints 0.0/1.0.
        names = list("ABCD")
        for p in (0.0, 0.4, 1.0):
            rng_a = np.random.default_rng(9)
            rng_b = np.random.default_rng(9)
            Topology.probabilistic(p).sense_matrix(names, rng_a)
            n_pairs = len(names) * (len(names) - 1) // 2
            rng_b.uniform(size=n_pairs)
            assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_derived_draws_only_partial_pairs(self):
        topo = Topology(mode="derived", pair_probabilities=(
            ("A", "B", 0.0), ("A", "C", 1.0), ("B", "C", 0.5)))
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        sense = topo.sense_matrix(list("ABC"), rng_a)
        rng_b.uniform()  # exactly one draw: the single partial pair
        assert rng_a.bit_generator.state == rng_b.bit_generator.state
        assert not sense[0, 1]
        assert sense[0, 2]

    def test_clique_expansion_and_k(self):
        topo = Topology.explicit(hidden_cliques=(("A", "B", "C"),))
        assert topo.hidden_edges() == {frozenset("AB"), frozenset("AC"),
                                       frozenset("BC")}
        assert topo.collision_packets() == 3

    def test_unknown_names_rejected(self):
        topo = Topology.explicit(hidden_pairs=(("A", "Z"),))
        with pytest.raises(ConfigurationError, match="unknown clients"):
            topo.sense_matrix(["A", "B"], np.random.default_rng(0))

    def test_config_rejects_both_topology_and_legacy(self):
        with pytest.raises(ConfigurationError, match="not both"):
            SessionConfig(topology=Topology.explicit(),
                          hidden_pairs=(("A", "B"),))

    def test_effective_topology_routes_legacy_fields(self):
        legacy = SessionConfig(hidden_pairs=(("A", "B"),))
        topo = legacy.effective_topology()
        assert topo.mode == "explicit"
        assert topo.hidden_edges() == {frozenset("AB")}
        prob = SessionConfig(sense_probability=0.3).effective_topology()
        assert prob.mode == "probabilistic"
        assert prob.sense_probability == 0.3


class TestDeploymentProperties:
    @given(st.floats(2.0, 4.5), st.floats(0.1, 80.0), st.floats(1.0, 5.0))
    @settings(max_examples=50, deadline=None)
    def test_pathloss_monotone_in_distance(self, exponent, d, step):
        model = LogDistancePathLoss(exponent=exponent, shadowing_db=0.0)
        assert model.mean_loss_db(d + step) >= model.mean_loss_db(d)

    @given(st.integers(0, 2 ** 16), st.integers(1, 4),
           st.integers(2, 20), st.floats(30.0, 150.0))
    @settings(max_examples=25, deadline=None)
    def test_snr_matrix_symmetry(self, seed, n_aps, n_clients, area):
        dep = make_deployment(n_aps=n_aps, n_clients=n_clients,
                              area_m=area, seed=seed)
        assert np.allclose(dep.snr_db, dep.snr_db.T)

    @given(st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_sensing_class_consistent_with_probability(self, seed):
        dep = make_deployment(seed=seed)
        for a in range(dep.n_clients):
            for b in range(dep.n_clients):
                if a == b:
                    continue
                p = dep.sense_probability(a, b)
                cls = dep.sensing_class(a, b)
                assert 0.0 <= p <= 1.0
                if cls is SensingClass.PERFECT:
                    assert p == 1.0
                elif cls is SensingClass.HIDDEN:
                    assert p == 0.0
                else:
                    assert 0.0 < p < 1.0

    @given(st.integers(0, 2 ** 16), st.integers(1, 4),
           st.integers(2, 24))
    @settings(max_examples=25, deadline=None)
    def test_never_hidden_from_own_ap(self, seed, n_aps, n_clients):
        """An associated client's link to its serving AP always clears
        the carrier-sense floor: from_deployment can't produce a client
        its own AP has zero chance of hearing."""
        dep = make_deployment(n_aps=n_aps, n_clients=n_clients,
                              seed=seed)
        for plan in dep.cells():
            topo = Topology.from_deployment(dep, plan.ap)
            assert topo.mode == "derived"
            for snr in plan.snr_db:
                assert snr >= dep.config.reachable_db
                assert snr > dep.config.cs_none_db


class TestAirInject:
    def test_inject_clips_at_cursor(self):
        air = ContinuousAir(AirConfig(chunk_samples=64),
                            np.random.default_rng(0))
        air.emit(64)
        wave = np.ones(100, dtype=complex)
        lo, end = air.inject(32, wave)
        assert (lo, end) == (64, 132)
        assert air.samples_clipped == 32
        assert air.samples_injected == 68
        # The surviving suffix rides the next chunks.
        chunk = air.emit(68)
        assert np.all(np.abs(chunk) > 0)

    def test_inject_entirely_past_is_dropped(self):
        air = ContinuousAir(AirConfig(chunk_samples=64),
                            np.random.default_rng(0))
        air.emit(64)
        lo, end = air.inject(0, np.ones(32, dtype=complex))
        assert end <= lo
        assert air.samples_injected == 0
        assert air.resident_samples == 0


def city_spec(n_aps=3, n_clients=12, area_m=70.0, seed=11,
              **deployment_extra) -> ScenarioSpec:
    table = {"n_aps": n_aps, "n_clients": n_clients, "area_m": area_m,
             "seed": seed, **deployment_extra}
    return ScenarioSpec.from_dict({
        "scenario": {"kind": "city_multicell", "n_packets": 1,
                     "payload_bits": 96, "design": "zigzag"},
        "deployment": table,
    })


class TestMultiCell:
    def test_coupled_block_runs_every_cell(self):
        spec = city_spec()
        city = build_city_session(spec, np.random.default_rng(1),
                                  "zigzag")
        report = city.run()
        assert set(report.cells) == {rt.plan.ap for rt in city.cells}
        assert report.counters["windows"] >= 1
        assert report.total_delivered >= 0
        assert report.timed_out_cells == 0
        for cell_report in report.cells.values():
            assert cell_report is not None

    def test_deterministic_given_seed(self):
        spec = city_spec()
        runs = []
        for _ in range(2):
            city = build_city_session(spec, np.random.default_rng(7),
                                      "zigzag")
            runs.append(city.run())
        assert runs[0].total_delivered == runs[1].total_delivered
        assert runs[0].counters == runs[1].counters
        for ap in runs[0].cells:
            assert runs[0].cells[ap].samples_elapsed \
                == runs[1].cells[ap].samples_elapsed

    def test_rejects_slot_engine_sessions(self):
        spec = city_spec()
        dep_spec = spec.deployment
        from repro.runner.builders import get_deployment
        deployment = get_deployment(spec)
        plan = deployment.cells()[0]
        slot_spec = spec.with_override("params.engine", "slot")
        session = build_cell_session(slot_spec,
                                     np.random.default_rng(0), "zigzag",
                                     deployment, plan)
        from repro.link import MultiCellSession
        with pytest.raises(ConfigurationError, match="event"):
            MultiCellSession(deployment, [(plan, session)])
        assert dep_spec.horizon_chunks >= 1

    def test_horizon_config_validated(self):
        with pytest.raises(ConfigurationError):
            MultiCellConfig(horizon_chunks=0)


class TestCellBuilder:
    def test_cell_session_matches_plan(self):
        spec = city_spec(offered_load=0.4, saturated_fraction=0.5)
        from repro.runner.builders import get_deployment
        deployment = get_deployment(spec)
        plan = max(deployment.cells(), key=lambda p: p.n_clients)
        session = build_cell_session(spec, np.random.default_rng(0),
                                     "zigzag", deployment, plan)
        assert [c.client.name for c in session.clients] \
            == list(plan.names)
        assert [c.client.src for c in session.clients] == list(plan.srcs)
        assert session.topology.mode == "derived"
        loads = {c.client.name: c.client.offered_load
                 for c in session.clients}
        for name, index in zip(plan.names, plan.clients):
            assert loads[name] == \
                spec.deployment.client_offered_load(index)

    def test_approximate_interference_adds_burst_stages(self):
        spec = city_spec()
        from repro.runner.builders import get_deployment
        deployment = get_deployment(spec)
        plans = sorted(deployment.cells(),
                       key=lambda p: -len(deployment.interferers(
                           p.ap, spec.deployment.interference_floor_db)))
        plan = plans[0]
        heard = deployment.interferers(
            plan.ap, spec.deployment.interference_floor_db)
        base = build_cell_session(spec, np.random.default_rng(0),
                                  "zigzag", deployment, plan)
        approx = build_cell_session(spec, np.random.default_rng(0),
                                    "zigzag", deployment, plan,
                                    approximate_interference=True)
        n_base = len(base.config.capture_impairments.stages) \
            if base.config.capture_impairments else 0
        n_approx = len(approx.config.capture_impairments.stages) \
            if approx.config.capture_impairments else 0
        assert n_approx - n_base == min(len(heard), 3)

    def test_client_name_roundtrip(self):
        assert client_name(0) == "c0"
        assert client_name(17) == "c17"


class TestDeploymentSpec:
    """The [deployment] spec table: parse/override/validate wiring."""

    def test_sequential_overrides_from_empty_table(self):
        # --set applies one key at a time, so the intermediate state
        # (n_aps set, n_clients still 0) must stay constructible; only
        # the final spec is validated (by the runner's pre-run gate).
        spec = ScenarioSpec.from_dict(
            {"scenario": {"kind": "city_scale", "n_trials": 1}})
        spec = spec.with_override("deployment.n_aps", 2)
        spec = spec.with_override("deployment.n_clients", 8)
        spec.deployment.validate()
        assert not spec.deployment.is_empty

    def test_validate_rejects_half_declared_table(self):
        spec = ScenarioSpec.from_dict(
            {"scenario": {"kind": "city_scale", "n_trials": 1}})
        spec = spec.with_override("deployment.n_aps", 2)
        with pytest.raises(ConfigurationError, match="n_clients"):
            spec.deployment.validate()

    def test_from_dict_validates_eagerly(self):
        with pytest.raises(ConfigurationError, match="n_clients"):
            ScenarioSpec.from_dict(
                {"scenario": {"kind": "city_scale", "n_trials": 1},
                 "deployment": {"n_aps": 2}})

    def test_roundtrip_preserves_table(self):
        spec = ScenarioSpec.from_dict(
            {"scenario": {"kind": "city_scale", "n_trials": 1},
             "deployment": {"n_aps": 2, "n_clients": 8, "area_m": 50.0}})
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again.deployment == spec.deployment
