"""Collision detection (§4.2.1) and matching (§4.2.2) tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.channel import ChannelParams
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, synthesize
from repro.utils.bits import random_bits
from repro.zigzag.detect import CollisionDetector
from repro.zigzag.match import collisions_match, match_score


def collision_capture(rng, preamble, shaper, offset=150, snr_db=12.0,
                      frames=None, freqs=(2e-3, -3e-3)):
    amp = np.sqrt(10 ** (snr_db / 10))
    if frames is None:
        frames = [Frame.make(random_bits(200, rng), src=i + 1,
                             preamble=preamble) for i in range(2)]
    txs = [
        Transmission.from_symbols(
            frames[0].symbols, shaper,
            ChannelParams(gain=amp * np.exp(1j * rng.uniform(0, 6.28)),
                          freq_offset=freqs[0],
                          sampling_offset=rng.uniform(0, 1)), 0, "A"),
        Transmission.from_symbols(
            frames[1].symbols, shaper,
            ChannelParams(gain=amp * np.exp(1j * rng.uniform(0, 6.28)),
                          freq_offset=freqs[1],
                          sampling_offset=rng.uniform(0, 1)), offset, "B"),
    ]
    return synthesize(txs, 1.0, rng, leading=8, tail=30), frames


class TestDetection:
    def test_collision_detected_with_offset(self, rng, preamble, shaper):
        cap, _ = collision_capture(rng, preamble, shaper, offset=150)
        detector = CollisionDetector(preamble, shaper, beta=0.3)
        verdict = detector.inspect(cap.samples,
                                   coarse_freqs=(2e-3, -3e-3))
        assert verdict.is_collision
        assert verdict.offset == pytest.approx(150, abs=2)

    def test_clean_packet_mostly_not_flagged(self, rng, preamble, shaper):
        """At the operating β, clean packets rarely trip the detector —
        the Table 5.1 false-positive rate. Harmless FPs are tolerated
        (§5.3a); we require a low rate, not zero."""
        detector = CollisionDetector(preamble, shaper, beta=0.5)
        flagged = 0
        trials = 10
        for _ in range(trials):
            frame = Frame.make(random_bits(200, rng), preamble=preamble)
            tx = Transmission.from_symbols(frame.symbols, shaper,
                                           ChannelParams(gain=5.0), 0, "A")
            cap = synthesize([tx], 1.0, rng, leading=8, tail=30)
            flagged += int(detector.inspect(cap.samples).is_collision)
        assert flagged <= trials * 0.3

    def test_verdict_offset_none_for_single(self, rng, preamble, shaper):
        from repro.zigzag.detect import CollisionVerdict
        assert CollisionVerdict(False, []).offset is None

    def test_false_negative_rate_reasonable(self, rng, preamble, shaper):
        """Buried preambles should mostly be found (Table 5.1)."""
        detector = CollisionDetector(preamble, shaper, beta=0.3)
        found = 0
        trials = 15
        for i in range(trials):
            cap, _ = collision_capture(rng, preamble, shaper,
                                       offset=120 + 10 * i)
            verdict = detector.inspect(cap.samples,
                                       coarse_freqs=(2e-3, -3e-3))
            found += int(verdict.is_collision)
        assert found >= trials * 0.8


class TestMatching:
    def test_same_packets_match(self, rng, preamble, shaper):
        cap1, frames = collision_capture(rng, preamble, shaper, offset=150)
        cap2, _ = collision_capture(rng, preamble, shaper, offset=60,
                                    frames=frames)
        pos1 = cap1.transmissions[1].symbol0
        pos2 = cap2.transmissions[1].symbol0
        score = match_score(cap1.samples, pos1, cap2.samples, pos2,
                            window=256)
        assert score > 0.25
        assert collisions_match(cap1.samples, pos1, cap2.samples, pos2)

    def test_different_packets_do_not_match(self, rng, preamble, shaper):
        cap1, _ = collision_capture(rng, preamble, shaper, offset=150)
        cap2, _ = collision_capture(rng, preamble, shaper, offset=60)
        # Different payloads -> correlation only at the shared preamble;
        # score over a window dominated by payload stays low.
        pos1 = cap1.transmissions[1].symbol0 + 2 * len(preamble)
        pos2 = cap2.transmissions[1].symbol0 + 2 * len(preamble)
        score = match_score(cap1.samples, pos1, cap2.samples, pos2,
                            window=256)
        assert score < 0.25

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            match_score(np.ones(10, complex), 0, np.ones(10, complex), 0,
                        window=0)

    def test_position_validation(self):
        with pytest.raises(ConfigurationError):
            match_score(np.ones(10, complex), 20, np.ones(10, complex), 0,
                        window=8)

    def test_overlap_too_short(self):
        with pytest.raises(ConfigurationError):
            match_score(np.ones(10, complex), 8, np.ones(10, complex), 8,
                        window=16)
