"""ZigZag engine tests: residuals, images, correction loop, end states."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.zigzag.engine import (
    PacketSpec,
    PlacementParams,
    SubtractionState,
    ZigZagEngine,
)
from repro.zigzag.schedule import DecodeStep, Placement, greedy_schedule

from helpers import hidden_pair_scenario


def build_engine(rng, preamble, shaper, stream_config, **kwargs):
    captures, frames, specs, placements = hidden_pair_scenario(
        rng, preamble, shaper, **kwargs)
    engine = ZigZagEngine(stream_config,
                          [c.samples for c in captures], specs, placements)
    schedule = greedy_schedule(
        [Placement(p.packet, p.collision, p.start,
                   specs[p.packet].n_symbols, shaper.sps)
         for p in placements], margin_symbols=1.0)
    return engine, schedule, captures, frames, specs


class TestEngineRun:
    def test_decodes_all_symbols(self, rng, preamble, shaper,
                                 stream_config):
        engine, schedule, captures, frames, specs = build_engine(
            rng, preamble, shaper, stream_config)
        out = engine.run(schedule)
        for name, spec in specs.items():
            assert np.all(out[name].source >= 0)  # every symbol decoded
            assert out[name].soft.size == spec.n_symbols

    def test_residual_power_drops(self, rng, preamble, shaper,
                                  stream_config):
        engine, schedule, captures, frames, specs = build_engine(
            rng, preamble, shaper, stream_config, snr_db=15.0)
        before = [np.mean(np.abs(c.samples) ** 2) for c in captures]
        engine.run(schedule)
        for c in range(2):
            assert engine.residual_power(c) < 0.2 * before[c]

    def test_images_match_ground_truth(self, rng, preamble, shaper,
                                       stream_config):
        engine, schedule, captures, frames, specs = build_engine(
            rng, preamble, shaper, stream_config, snr_db=15.0)
        engine.run(schedule)
        for ci, capture in enumerate(captures):
            for ti, t in enumerate(capture.transmissions):
                image = engine.images[(t.label, ci)]
                truth = capture.clean_components[ti]
                err = np.mean(np.abs(image - truth) ** 2)
                assert err < 0.2 * np.mean(np.abs(truth) ** 2)

    def test_backward_step_rejected(self, rng, preamble, shaper,
                                    stream_config):
        engine, schedule, *_ = build_engine(rng, preamble, shaper,
                                            stream_config)
        engine.execute(schedule[0])  # stream now exists with a cursor
        if schedule[0].i1 < 3:
            pytest.skip("first chunk too short to rewind")
        rewind = DecodeStep(schedule[0].packet, schedule[0].collision,
                            schedule[0].i1 - 2, schedule[0].i1 + 10)
        with pytest.raises(ConfigurationError):
            engine.execute(rewind)

    def test_duplicate_placement_rejected(self, stream_config, rng,
                                          preamble, shaper):
        captures, frames, specs, placements = hidden_pair_scenario(
            rng, preamble, shaper)
        with pytest.raises(ConfigurationError):
            ZigZagEngine(stream_config, [c.samples for c in captures],
                         specs, placements + placements[:1])

    def test_unknown_packet_rejected(self, stream_config, rng, preamble,
                                     shaper):
        captures, frames, specs, placements = hidden_pair_scenario(
            rng, preamble, shaper)
        bad = PlacementParams("ghost", 0, 10.0, placements[0].estimate)
        with pytest.raises(ConfigurationError):
            ZigZagEngine(stream_config, [c.samples for c in captures],
                         specs, placements + [bad])


class TestEndStates:
    def test_final_multiplier_matches_channel(self, rng, preamble, shaper,
                                              stream_config):
        engine, schedule, captures, frames, specs = build_engine(
            rng, preamble, shaper, stream_config, snr_db=15.0,
            phase_noise=0.0, oracle=True)
        engine.run(schedule)
        for ci, capture in enumerate(captures):
            for t in capture.transmissions:
                multiplier = engine.final_multiplier(t.label, ci)
                p = t.params
                n_last = (t.symbol0 + p.sampling_offset
                          + shaper.sps * (t.n_symbols - 1))
                expected = p.gain * np.exp(
                    2j * np.pi * p.freq_offset * n_last)
                ratio = multiplier / expected
                assert abs(abs(ratio) - 1.0) < 0.25
                assert abs(np.angle(ratio)) < 0.5

    def test_final_freq_close_to_truth(self, rng, preamble, shaper,
                                       stream_config):
        engine, schedule, captures, frames, specs = build_engine(
            rng, preamble, shaper, stream_config, snr_db=15.0)
        engine.run(schedule)
        for ci, capture in enumerate(captures):
            for t in capture.transmissions:
                freq = engine.final_freq(t.label, ci)
                assert freq == pytest.approx(t.params.freq_offset,
                                             abs=3e-4)


class TestSubtractionState:
    def test_predict_extrapolates_freq(self):
        state = SubtractionState(multiplier=1.0 + 0j, freq=0.01,
                                 last_position=100.0)
        predicted = state.predict(150.0)
        assert np.angle(predicted) == pytest.approx(0.5)

    def test_predict_without_history(self):
        state = SubtractionState(multiplier=2.0 + 0j)
        assert state.predict(42.0) == 2.0 + 0j
