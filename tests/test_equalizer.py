"""Linear equalizer tests: LS fit, ridge, LMS, inversion (§4.2.4d)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.constellation import BPSK
from repro.phy.equalizer import LmsEqualizer
from repro.phy.isi import IsiFilter, default_isi_taps


def make_training(rng, n=200, strength=0.3):
    d = BPSK.modulate(rng.integers(0, 2, n))
    channel = IsiFilter(default_isi_taps(strength))
    return channel.apply(d), d, channel


class TestLeastSquares:
    def test_undoes_isi(self, rng):
        received, desired, channel = make_training(rng)
        # The default multipath profile spans +/-3 symbols, so its inverse
        # needs a longer filter than the channel itself.
        eq = LmsEqualizer(n_taps=15)
        eq.fit_least_squares(received, desired)
        out = eq.equalize(received)
        error = np.mean(np.abs(out[15:-15] - desired[15:-15]) ** 2)
        assert error < 0.01

    def test_ridge_shrinks_toward_identity(self, rng):
        received, desired, _ = make_training(rng, n=40, strength=0.0)
        noisy = received + 0.3 * (rng.standard_normal(40)
                                  + 1j * rng.standard_normal(40))
        free = LmsEqualizer(n_taps=7)
        free.fit_least_squares(noisy, desired)
        ridged = LmsEqualizer(n_taps=7)
        ridged.fit_least_squares(noisy, desired, ridge=200.0)
        identity = np.zeros(7, complex)
        identity[3] = 1.0
        assert np.linalg.norm(ridged.taps - identity) \
            < np.linalg.norm(free.taps - identity)

    def test_negative_ridge_rejected(self, rng):
        received, desired, _ = make_training(rng, n=40)
        eq = LmsEqualizer(n_taps=5)
        with pytest.raises(ConfigurationError):
            eq.fit_least_squares(received, desired, ridge=-1.0)

    def test_training_too_short(self):
        eq = LmsEqualizer(n_taps=9)
        with pytest.raises(ConfigurationError):
            eq.fit_least_squares(np.ones(4, complex), np.ones(4, complex))

    def test_length_mismatch(self):
        eq = LmsEqualizer(n_taps=3)
        with pytest.raises(ConfigurationError):
            eq.fit_least_squares(np.ones(8, complex), np.ones(7, complex))


class TestLms:
    def test_adapts_toward_solution(self, rng):
        received, desired, _ = make_training(rng, n=2000, strength=0.2)
        eq = LmsEqualizer(n_taps=5, step=0.02)
        eq.adapt_lms(received, desired)
        out = eq.equalize(received)
        tail = slice(1500, 1990)
        assert np.mean(np.abs(out[tail] - desired[tail]) ** 2) < 0.02


class TestInversion:
    def test_inverse_channel_reapplies_isi(self, rng):
        received, desired, channel = make_training(rng, n=400)
        eq = LmsEqualizer(n_taps=7)
        eq.fit_least_squares(received, desired)
        rebuilt_channel = eq.inverse_channel(length=21)
        redistorted = rebuilt_channel.apply(desired)
        core = slice(30, -30)
        assert np.mean(np.abs(redistorted[core] - received[core]) ** 2) \
            < 0.02

    def test_default_construction_is_identity(self):
        eq = LmsEqualizer(n_taps=5)
        x = np.arange(10, dtype=complex)
        assert np.allclose(eq.equalize(x), x)

    def test_bad_tap_count(self):
        with pytest.raises(ConfigurationError):
            LmsEqualizer(n_taps=0)
