"""Channel/frequency/noise estimation tests (§4.2.4)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.estimation import (
    ChannelEstimate,
    estimate_channel_from_preamble,
    estimate_frequency_offset,
    estimate_noise_power,
)
from repro.phy.noise import awgn


class TestChannelEstimate:
    def test_to_params_roundtrip(self):
        est = ChannelEstimate(gain=2.0 + 1j, freq_offset=1e-4,
                              sampling_offset=0.25, snr_db=12.0)
        params = est.to_params()
        assert params.gain == 2.0 + 1j
        assert params.freq_offset == 1e-4
        assert params.sampling_offset == 0.25
        assert params.phase_noise_std == 0.0

    def test_with_gain(self):
        est = ChannelEstimate(1.0, 0.0, 0.0, 10.0)
        assert est.with_gain(3.0).gain == 3.0
        assert est.with_freq_offset(2e-4).freq_offset == 2e-4


class TestGainEstimation:
    def test_recovers_gain_symbol_domain(self, preamble, rng):
        gain = 3.0 * np.exp(1j * 0.9)
        signal = np.concatenate([
            np.zeros(12, complex),
            gain * preamble.symbols,
            np.zeros(12, complex),
        ]) + awgn(56, 0.01, rng)
        est = estimate_channel_from_preamble(signal, preamble, 12,
                                             noise_power=0.01)
        assert abs(est.gain - gain) < 0.15

    def test_snr_reported(self, preamble, rng):
        signal = np.concatenate([2.0 * preamble.symbols,
                                 np.zeros(8, complex)])
        est = estimate_channel_from_preamble(signal, preamble, 0,
                                             noise_power=1.0)
        assert est.snr_db == pytest.approx(6.0, abs=1.0)


class TestFrequencyEstimation:
    def test_recovers_offset(self, preamble):
        f = 3e-3
        k = np.arange(len(preamble))
        signal = np.concatenate([
            preamble.symbols * np.exp(2j * np.pi * f * k),
            np.zeros(4, complex),
        ])
        est = estimate_frequency_offset(signal, preamble, 0, coarse=2.5e-3)
        assert est == pytest.approx(f, abs=2e-4)

    def test_segment_count_validation(self, preamble):
        signal = np.ones(64, complex)
        with pytest.raises(ConfigurationError):
            estimate_frequency_offset(signal, preamble, 0, n_segments=1)

    def test_signal_too_short(self, preamble):
        with pytest.raises(ConfigurationError):
            estimate_frequency_offset(np.ones(16, complex), preamble, 0)


class TestNoiseEstimation:
    def test_quiet_span(self, rng):
        signal = np.concatenate([awgn(100, 2.0, rng),
                                 10 * np.ones(100, complex)])
        power = estimate_noise_power(signal, quiet_span=slice(0, 100))
        assert power == pytest.approx(2.0, rel=0.25)

    def test_blind_estimate_ignores_bursts(self, rng):
        noise = awgn(1000, 1.0, rng)
        signal = noise.copy()
        signal[300:600] += 20.0  # a strong packet in the middle
        power = estimate_noise_power(signal)
        assert power == pytest.approx(1.0, rel=0.4)

    def test_empty_quiet_span_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            estimate_noise_power(awgn(10, 1.0, rng),
                                 quiet_span=slice(5, 5))
