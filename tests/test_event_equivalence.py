"""Event-driven vs slot-clocked session cores: one loop, two clocks.

The two engines share every domain rule (client state machine, snapshot
carrier sense, ACK planning, AP receive chain) but consume the session
RNG in different orders — the event core never draws idle noise — so
identically-seeded twins agree *statistically*, not sample-for-sample.
These tests pin how tight that agreement actually is: scenario classes
where outcomes are deterministic at the working SNR must match exactly,
Monte-Carlo-dominated classes must match in aggregate, and the event
core's lazy-air bookkeeping must reconcile with the air it skipped.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.link import LinkSession, SessionConfig, StreamClient
from repro.link.events import PRIO_ACK, PRIO_AIR, PRIO_CLIENT, EventQueue

ENGINES = ("event", "slot")


def pair_clients(load=None, snr=12.0):
    return [StreamClient("A", 1, snr, 3e-3, offered_load=load),
            StreamClient("B", 2, snr, -2e-3, offered_load=load)]


def run_one(engine, seed, clients=None, design="zigzag", **overrides):
    defaults = dict(n_packets=3, payload_bits=200)
    defaults.update(overrides)
    session = LinkSession(SessionConfig(engine=engine, **defaults),
                          clients or pair_clients(), design=design,
                          rng=np.random.default_rng(seed))
    return session.run()


def twins(seed, **kw):
    """Identically-seeded (event, slot) reports."""
    clients = kw.pop("clients_fn", pair_clients)
    return tuple(run_one(engine, seed, clients=clients(), **kw)
                 for engine in ENGINES)


class TestPairEquivalence:
    """Hidden-pair ZigZag sessions: the paper's core loop on both clocks."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
    def test_delivery_and_matching_agree(self, seed):
        event, slot = twins(seed)
        assert event.total_delivered == slot.total_delivered
        assert not event.timed_out and not slot.timed_out
        assert event.receiver_stats.zigzag_matches > 0
        assert slot.receiver_stats.zigzag_matches > 0
        # Same MAC arithmetic: session lengths agree to within the
        # decode-timing jitter of different channel realizations.
        assert 0.5 < event.samples_elapsed / slot.samples_elapsed < 2.0

    def test_sensing_pair_serializes_on_both_clocks(self):
        for seed in (1, 2, 3):
            event, slot = twins(seed, sense_probability=1.0)
            for report in (event, slot):
                assert report.total_delivered == 6
                assert report.receiver_stats.zigzag_matches == 0
                assert report.counters["packets_dropped"] == 0

    def test_80211_design_agrees_in_aggregate(self):
        """The standard AP drops most hidden-pair collisions on both
        clocks; the comparison is Monte-Carlo so only the pooled total
        is pinned (individual seeds legitimately differ)."""
        pooled = {"event": 0, "slot": 0}
        for seed in range(1, 9):
            for engine in ENGINES:
                pooled[engine] += run_one(
                    engine, seed, design="802.11",
                    n_packets=2).total_delivered
        assert abs(pooled["event"] - pooled["slot"]) <= 8
        # ZigZag's advantage (Fig 6) survives the engine swap.
        assert pooled["event"] < 16 and pooled["slot"] < 16


class TestCliqueEquivalence:
    """3-way mutually-hidden sessions are livelock-prone and bimodal;
    agreement is pinned on pooled statistics."""

    @staticmethod
    def clique():
        return [StreamClient("A", 1, 13.0, 3e-3),
                StreamClient("B", 2, 13.0, -2e-3),
                StreamClient("C", 3, 13.0, 1e-3)]

    def test_pooled_delivery_and_multiway(self):
        pooled = {"event": 0, "slot": 0}
        multiway = {"event": 0, "slot": 0}
        for seed in range(6):
            for engine in ENGINES:
                report = run_one(engine, seed, clients=self.clique(),
                                 hidden_cliques=(("A", "B", "C"),))
                pooled[engine] += report.total_delivered
                multiway[engine] += report.receiver_stats.multiway_matches
        # 54 packets offered per engine; both clocks resolve most and
        # both exercise the k-way path.
        assert pooled["event"] >= 30 and pooled["slot"] >= 30
        assert abs(pooled["event"] - pooled["slot"]) <= 12
        assert multiway["event"] > 0 and multiway["slot"] > 0


class TestLazyAir:
    """The event core's reason to exist: idle air is skipped, not paid."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_low_load_sessions_agree_and_skip(self, seed):
        event, slot = twins(seed, clients_fn=lambda: pair_clients(0.02),
                            n_packets=2, sense_probability=1.0)
        assert event.total_delivered == slot.total_delivered
        assert abs(event.samples_elapsed - slot.samples_elapsed) \
            <= 0.05 * slot.samples_elapsed
        # The slot clock synthesizes everything; the event clock skips
        # the idle majority and still lands on the same session. Its
        # air cursor (emitted + skipped) never runs past MAC time —
        # trailing idle the session ended inside is simply never
        # materialized.
        assert slot.counters["samples_skipped"] == 0
        assert event.counters["samples_skipped"] \
            > event.counters["samples_emitted"]
        assert event.counters["samples_skipped"] \
            + event.counters["samples_emitted"] <= event.samples_elapsed
        assert event.counters["samples_emitted"] \
            < slot.counters["samples_emitted"]

    def test_saturated_sessions_never_skip_signal(self):
        """Skipping is only legal over silence: every emitted burst the
        slot core decodes, the event core must also have synthesized."""
        event, slot = twins(3)
        assert event.counters["bursts"] > 0
        assert event.total_delivered == slot.total_delivered


class TestRunnerCurves:
    def test_head_to_head_curves_match_across_engines(self):
        """The acceptance criterion: the runner's ZigZag-vs-802.11
        comparison (identically-seeded air, both APs) lands on the same
        means, within overlapping Monte-Carlo confidence intervals, on
        either session core."""
        from repro.runner import MonteCarloRunner, ScenarioSpec

        def sweep(engine):
            spec = ScenarioSpec(
                kind="ap_stream", n_trials=6, seed=11, payload_bits=200,
                n_packets=2, params={"hidden_pairs": "A:B",
                                     "chunk_samples": 512,
                                     "engine": engine})
            return MonteCarloRunner().run(spec)

        event, slot = sweep("event"), sweep("slot")
        for metric in ("delivered_zigzag", "delivered_80211"):
            m_e, lo_e, hi_e = event.ci(metric)
            m_s, lo_s, hi_s = slot.ci(metric)
            assert lo_e <= hi_s and lo_s <= hi_e, \
                f"{metric}: event CI [{lo_e:.2f},{hi_e:.2f}] disjoint " \
                f"from slot CI [{lo_s:.2f},{hi_s:.2f}]"
        # And the paper's qualitative result holds on both clocks.
        assert event.mean("delivered_zigzag") \
            > event.mean("delivered_80211")
        assert slot.mean("delivered_zigzag") \
            > slot.mean("delivered_80211")


class TestEngineContract:
    def test_event_engine_is_deterministic(self):
        a = run_one("event", seed=7)
        b = run_one("event", seed=7)
        assert a.samples_elapsed == b.samples_elapsed
        assert a.counters == b.counters
        assert {n: s.delivered for n, s in a.flows.items()} \
            == {n: s.delivered for n, s in b.flows.items()}

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionConfig(engine="warp-drive")

    def test_event_queue_orders_time_priority_tiebreak(self):
        q = EventQueue()
        q.push(200, PRIO_CLIENT, 0, "late")
        q.push(100, PRIO_CLIENT, 1, "client-b")
        q.push(100, PRIO_CLIENT, 0, "client-a")
        q.push(100, PRIO_ACK, 0, "ack")
        q.push(100, PRIO_AIR, 5, "air")
        kinds = [q.pop()[4] for _ in range(len(q))]
        # Same boundary: air before ACK before clients (in list order),
        # then strictly later events.
        assert kinds == ["air", "ack", "client-a", "client-b", "late"]

    def test_event_queue_is_fifo_within_equal_keys(self):
        q = EventQueue()
        for tag in ("first", "second", "third"):
            q.push(50, PRIO_CLIENT, 2, tag)
        assert [q.pop()[4] for _ in range(3)] \
            == ["first", "second", "third"]
