"""Integration tests of the testbed experiment harness (Chapter 5)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.testbed.experiment import (
    Design,
    PairExperiment,
    PairExperimentConfig,
    run_capture_sweep_point,
)

SMALL = PairExperimentConfig(payload_bits=160, n_packets=4, max_rounds=3)


class TestPairExperiment:
    def test_scheduler_design_is_lossless_at_good_snr(self):
        exp = PairExperiment(14.0, 14.0, sense_probability=0.0,
                             config=SMALL, rng=np.random.default_rng(0))
        flows, airtime = exp.run(Design.SCHEDULER)
        assert flows["A"].loss_rate == 0.0
        assert flows["B"].loss_rate == 0.0
        assert airtime == 8.0

    def test_hidden_80211_loses_most_packets(self):
        losses = []
        for seed in range(3):
            exp = PairExperiment(12.0, 12.0, sense_probability=0.0,
                                 config=SMALL,
                                 rng=np.random.default_rng(seed))
            flows, _ = exp.run(Design.CURRENT_80211)
            losses += [flows["A"].loss_rate, flows["B"].loss_rate]
        assert np.mean(losses) > 0.5

    def test_hidden_zigzag_recovers_most_packets(self):
        losses = []
        for seed in range(3):
            exp = PairExperiment(12.0, 12.0, sense_probability=0.0,
                                 config=SMALL,
                                 rng=np.random.default_rng(seed))
            flows, _ = exp.run(Design.ZIGZAG)
            losses += [flows["A"].loss_rate, flows["B"].loss_rate]
        assert np.mean(losses) < 0.3

    def test_full_sensing_equals_scheduler(self):
        """With perfect carrier sense there are no collisions, so every
        design behaves like the scheduler."""
        exp = PairExperiment(14.0, 14.0, sense_probability=1.0,
                             config=SMALL, rng=np.random.default_rng(1))
        flows, airtime = exp.run(Design.CURRENT_80211)
        assert flows["A"].loss_rate == 0.0
        assert airtime == 8.0

    def test_sense_probability_validated(self):
        with pytest.raises(ConfigurationError):
            PairExperiment(10.0, 10.0, sense_probability=1.5, config=SMALL)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            PairExperimentConfig(payload_bits=10)
        with pytest.raises(ConfigurationError):
            PairExperimentConfig(n_packets=0)


class TestCaptureSweep:
    def test_zigzag_dominates_80211_at_equal_power(self):
        z = run_capture_sweep_point(0.0, Design.ZIGZAG, snr_b_db=10.0,
                                    config=SMALL, seed=3)
        e = run_capture_sweep_point(0.0, Design.CURRENT_80211,
                                    snr_b_db=10.0, config=SMALL, seed=3)
        assert z["total"] > e["total"]

    def test_sic_window_exceeds_scheduler(self):
        """Mid-SINR: ZigZag resolves both packets from single collisions,
        beating the collision-free scheduler's total of 1.0 (Fig 5-4c)."""
        totals = [run_capture_sweep_point(9.0, Design.ZIGZAG,
                                          snr_b_db=10.0, config=SMALL,
                                          seed=s)["total"]
                  for s in range(3)]
        assert max(totals) > 1.0

    def test_80211_starves_bob_under_capture(self):
        result = run_capture_sweep_point(12.0, Design.CURRENT_80211,
                                         snr_b_db=10.0, config=SMALL,
                                         seed=0)
        assert result["B"] == 0.0
        assert result["A"] > 0.0
