"""Failure injection: the receiver must degrade gracefully, never crash.

Each test feeds a pathological input through a public API and checks for a
clean failure (DecodeResult with success=False, empty list, or a library
exception) rather than a crash or a silently-wrong success.
"""

import numpy as np
import pytest

from repro.core import ReceiverConfig, ZigZagReceiver
from repro.errors import ReproError
from repro.phy.channel import ChannelParams
from repro.phy.estimation import ChannelEstimate
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, synthesize
from repro.receiver.decoder import StandardDecoder
from repro.receiver.frontend import SymbolStreamDecoder
from repro.utils.bits import random_bits
from repro.zigzag.decoder import ZigZagPairDecoder
from repro.zigzag.engine import PacketSpec, PlacementParams

from helpers import hidden_pair_scenario


class TestStandardDecoderRobustness:
    def test_empty_capture(self, preamble, shaper):
        decoder = StandardDecoder(preamble, shaper, noise_power=1.0)
        result = decoder.decode(np.zeros(4, complex))
        assert not result.success

    def test_all_zero_capture(self, preamble, shaper):
        decoder = StandardDecoder(preamble, shaper, noise_power=1.0)
        result = decoder.decode(np.zeros(2000, complex))
        assert not result.success

    def test_dc_only_capture(self, preamble, shaper):
        decoder = StandardDecoder(preamble, shaper, noise_power=1.0)
        result = decoder.decode(np.full(2000, 5.0 + 0j))
        assert not result.success

    def test_preamble_only_no_body(self, preamble, shaper, rng):
        """A capture that cuts off right after the preamble."""
        frame = Frame.make(random_bits(200, rng), preamble=preamble)
        tx = Transmission.from_symbols(frame.symbols, shaper,
                                       ChannelParams(gain=6.0), 0, "a")
        cap = synthesize([tx], 1.0, rng, leading=8)
        truncated = cap.samples[:90]
        decoder = StandardDecoder(preamble, shaper, noise_power=1.0)
        result = decoder.decode(truncated)
        assert not result.success

    def test_saturating_amplitude(self, preamble, shaper, rng):
        frame = Frame.make(random_bits(200, rng), preamble=preamble)
        tx = Transmission.from_symbols(frame.symbols, shaper,
                                       ChannelParams(gain=1e6), 0, "a")
        cap = synthesize([tx], 1.0, rng, leading=8, tail=20)
        decoder = StandardDecoder(preamble, shaper, noise_power=1.0)
        result = decoder.decode(cap.samples)   # must not crash
        assert result.bits.size > 0 or not result.success

    def test_position_beyond_capture(self, preamble, shaper, rng):
        decoder = StandardDecoder(preamble, shaper, noise_power=1.0)
        noise = rng.standard_normal(500) + 1j * rng.standard_normal(500)
        result = decoder.decode(noise, start_position=10_000)
        assert not result.success


class TestStreamDecoderRobustness:
    def test_zero_gain_estimate(self, stream_config, rng):
        estimate = ChannelEstimate(gain=0.0 + 0j, freq_offset=0.0,
                                   sampling_offset=0.0, snr_db=-30.0)
        stream = SymbolStreamDecoder(stream_config, estimate, 20.0)
        noise = rng.standard_normal(800) + 1j * rng.standard_normal(800)
        chunk = stream.decode_chunk(noise, 50)  # must not divide-by-zero
        assert np.all(np.isfinite(chunk.soft))

    def test_signal_shorter_than_chunk(self, stream_config, rng):
        estimate = ChannelEstimate(gain=1.0, freq_offset=0.0,
                                   sampling_offset=0.0, snr_db=10.0)
        stream = SymbolStreamDecoder(stream_config, estimate, 0.0)
        chunk = stream.decode_chunk(np.ones(10, complex), 40)
        assert chunk.soft.size == 40  # zero-padded tail, no crash


class TestZigZagRobustness:
    def test_wildly_wrong_estimates(self, rng, preamble, shaper,
                                    stream_config):
        """Garbage channel estimates must fail cleanly, not crash."""
        captures, frames, specs, placements = hidden_pair_scenario(
            rng, preamble, shaper)
        corrupted = [
            PlacementParams(p.packet, p.collision, p.start,
                            ChannelEstimate(gain=100.0 * 1j,
                                            freq_offset=0.01,
                                            sampling_offset=0.0,
                                            snr_db=40.0))
            for p in placements
        ]
        outcome = ZigZagPairDecoder(stream_config).decode(
            [c.samples for c in captures], specs, corrupted)
        assert not outcome.all_decoded

    def test_wrong_length_specs(self, rng, preamble, shaper,
                                stream_config):
        captures, frames, specs, placements = hidden_pair_scenario(
            rng, preamble, shaper)
        short = {n: PacketSpec(n, 64) for n in specs}
        outcome = ZigZagPairDecoder(stream_config).decode(
            [c.samples for c in captures], short, placements)
        # Decodes 64 symbols per packet (prefix) but the CRC cannot pass.
        assert not outcome.all_decoded

    def test_single_capture_pair_decode(self, rng, preamble, shaper,
                                        stream_config):
        """Pair decoder on one capture: only non-overlapping regions are
        schedulable; overlapping-equal patterns fail cleanly."""
        captures, frames, specs, placements = hidden_pair_scenario(
            rng, preamble, shaper)
        only_first = [p for p in placements if p.collision == 0]
        outcome = ZigZagPairDecoder(stream_config).decode(
            [captures[0].samples], specs, only_first)
        assert not outcome.all_decoded


class TestReceiverRobustness:
    def test_receiver_survives_garbage_stream(self, preamble, shaper,
                                              rng):
        receiver = ZigZagReceiver(ReceiverConfig(
            preamble=preamble, shaper=shaper, noise_power=1.0))
        for _ in range(5):
            n = int(rng.integers(50, 2000))
            garbage = (rng.standard_normal(n)
                       + 1j * rng.standard_normal(n)) * rng.uniform(0, 20)
            receiver.receive(garbage)  # must never raise

    def test_receiver_buffer_bounded(self, preamble, shaper, rng):
        """Unmatched collisions never grow the buffer beyond capacity."""
        config = ReceiverConfig(preamble=preamble, shaper=shaper,
                                noise_power=1.0, buffer_capacity=2,
                                expected_symbols=312)
        receiver = ZigZagReceiver(config)
        for i in range(5):
            frames = [Frame.make(random_bits(200, rng), src=j + 1,
                                 preamble=preamble) for j in range(2)]
            txs = [Transmission.from_symbols(
                f.symbols, shaper,
                ChannelParams(gain=4.0 * np.exp(1j * rng.uniform(0, 6)),
                              freq_offset=4e-3 * (1 - 2 * j)),
                j * (100 + 20 * i), str(j))
                for j, f in enumerate(frames)]
            cap = synthesize(txs, 1.0, rng, leading=8, tail=30)
            receiver.receive(cap.samples)
        assert len(receiver.buffer) <= 2
