"""Frame building/parsing tests: header fields, CRC, retransmissions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, FrameError
from repro.phy.frame import (
    HEADER_BITS,
    Frame,
    FrameHeader,
    build_frame_bits,
    parse_frame_bits,
)
from repro.phy.preamble import default_preamble
from repro.utils.bits import random_bits


class TestHeader:
    def test_roundtrip(self):
        h = FrameHeader(src=7, dst=3, seq=555, retry=True,
                        modulation="qam16", payload_bits=1200)
        assert FrameHeader.from_bits(h.to_bits()) == h

    def test_width(self):
        h = FrameHeader(1, 2, 3, False, "bpsk", 10)
        assert h.to_bits().size == HEADER_BITS

    def test_field_range_checks(self):
        with pytest.raises(ConfigurationError):
            FrameHeader(src=256, dst=0, seq=0, retry=False,
                        modulation="bpsk", payload_bits=10)
        with pytest.raises(ConfigurationError):
            FrameHeader(src=0, dst=0, seq=4096, retry=False,
                        modulation="bpsk", payload_bits=10)

    def test_unknown_modulation(self):
        with pytest.raises(ConfigurationError):
            FrameHeader(0, 0, 0, False, "fsk", 10)

    def test_with_retry(self):
        h = FrameHeader(1, 0, 9, False, "bpsk", 64)
        assert h.with_retry().retry is True
        assert h.with_retry().seq == h.seq

    @given(src=st.integers(0, 255), seq=st.integers(0, 4095),
           retry=st.booleans(), payload=st.integers(0, 65535))
    @settings(max_examples=50)
    def test_roundtrip_property(self, src, seq, retry, payload):
        h = FrameHeader(src, 0, seq, retry, "qpsk", payload)
        assert FrameHeader.from_bits(h.to_bits()) == h


class TestFrameBits:
    def test_build_parse_roundtrip(self, rng):
        payload = random_bits(100, rng)
        header = FrameHeader(1, 0, 5, False, "bpsk", 100)
        bits = build_frame_bits(header, payload)
        parsed_header, parsed_payload, ok = parse_frame_bits(bits)
        assert ok
        assert parsed_header == header
        assert np.array_equal(parsed_payload, payload)

    def test_length_mismatch_rejected(self, rng):
        header = FrameHeader(1, 0, 5, False, "bpsk", 100)
        with pytest.raises(FrameError):
            build_frame_bits(header, random_bits(99, rng))

    def test_corruption_fails_crc(self, rng):
        payload = random_bits(64, rng)
        header = FrameHeader(1, 0, 5, False, "bpsk", 64)
        bits = build_frame_bits(header, payload)
        bits[10] ^= 1
        _, _, ok = parse_frame_bits(bits)
        assert not ok


class TestFrame:
    def test_symbol_layout_bpsk(self, rng, preamble):
        frame = Frame.make(random_bits(96, rng), preamble=preamble)
        expected = len(preamble) + HEADER_BITS + 96 + 32
        assert frame.n_symbols == expected

    def test_symbol_layout_qam16(self, rng, preamble):
        frame = Frame.make(random_bits(96, rng), modulation="qam16",
                           preamble=preamble)
        expected = len(preamble) + HEADER_BITS + (96 + 32) // 4
        assert frame.n_symbols == expected

    def test_starts_with_preamble(self, rng, preamble):
        frame = Frame.make(random_bits(64, rng), preamble=preamble)
        assert np.array_equal(frame.symbols[:len(preamble)],
                              preamble.symbols)

    def test_retransmission_sets_retry(self, rng, preamble):
        frame = Frame.make(random_bits(64, rng), preamble=preamble)
        retry = frame.retransmission()
        assert retry.header.retry is True
        assert np.array_equal(retry.payload, frame.payload)

    def test_body_bits_crc_valid(self, rng, preamble):
        from repro.phy.crc import crc32_check
        frame = Frame.make(random_bits(64, rng), preamble=preamble)
        assert crc32_check(frame.body_bits)
