"""SymbolStreamDecoder tests: chunked decoding, refinement, regions."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.channel import Channel, ChannelParams
from repro.phy.constellation import BPSK, QPSK
from repro.phy.estimation import ChannelEstimate
from repro.phy.frame import HEADER_BITS, Frame
from repro.receiver.frontend import SymbolStreamDecoder
from repro.utils.bits import random_bits


def make_stream_scene(rng, preamble, shaper, config, *, gain=4.0 + 0j,
                      freq=1e-3, mu=0.3, payload=300, offset=30):
    frame = Frame.make(random_bits(payload, rng), preamble=preamble)
    params = ChannelParams(gain=gain, freq_offset=freq, sampling_offset=mu)
    wave = Channel(params, rng).apply(shaper.shape(frame.symbols),
                                      start_sample=offset)
    buffer = np.zeros(offset + wave.size + 20, complex)
    buffer[offset:offset + wave.size] = wave
    buffer += (rng.standard_normal(buffer.size)
               + 1j * rng.standard_normal(buffer.size)) / np.sqrt(2)
    start = offset + shaper.delay + mu
    estimate = ChannelEstimate(gain=gain, freq_offset=freq,
                               sampling_offset=mu, snr_db=12.0)
    stream = SymbolStreamDecoder(config, estimate, start)
    return frame, buffer, stream


class TestChunkedDecoding:
    def test_single_chunk_decodes_packet(self, rng, preamble, shaper,
                                         stream_config):
        from repro.phy.frame import scramble_bits
        frame, buffer, stream = make_stream_scene(rng, preamble, shaper,
                                                  stream_config)
        chunk = stream.decode_chunk(buffer, frame.n_symbols)
        bits = scramble_bits(
            BPSK.demodulate(chunk.decisions[len(preamble):]))
        assert np.array_equal(bits, frame.body_bits)

    def test_chunked_equals_single(self, rng, preamble, shaper,
                                   stream_config):
        frame, buffer, stream_a = make_stream_scene(rng, preamble, shaper,
                                                    stream_config)
        whole = stream_a.decode_chunk(buffer, frame.n_symbols)
        # Rebuild the identical scene for the chunked run.
        rng2 = np.random.default_rng(1234)
        frame_b, buffer_b, stream_b = make_stream_scene(
            rng2, preamble, shaper, stream_config)
        pieces = []
        for end in (50, 130, 250, frame_b.n_symbols):
            pieces.append(stream_b.decode_chunk(buffer_b, end).decisions)
        assert np.array_equal(np.concatenate(pieces), whole.decisions)

    def test_cursor_enforced(self, rng, preamble, shaper, stream_config):
        frame, buffer, stream = make_stream_scene(rng, preamble, shaper,
                                                  stream_config)
        stream.decode_chunk(buffer, 50)
        with pytest.raises(ConfigurationError):
            stream.decode_chunk(buffer, 30)

    def test_effective_symbols_carry_phase(self, rng, preamble, shaper,
                                           stream_config):
        frame, buffer, stream = make_stream_scene(rng, preamble, shaper,
                                                  stream_config)
        chunk = stream.decode_chunk(buffer, 100)
        rotated = chunk.decisions * np.exp(1j * chunk.phases)
        assert np.allclose(np.abs(rotated), np.abs(chunk.decisions))


class TestRefinement:
    def test_gain_refined_after_preamble(self, rng, preamble, shaper,
                                         stream_config):
        true_gain = 4.0 * np.exp(1j * 0.2)
        frame, buffer, stream = make_stream_scene(
            rng, preamble, shaper, stream_config, gain=true_gain)
        # Feed a deliberately poor initial gain estimate.
        stream.estimate = stream.estimate.with_gain(true_gain * 1.3
                                                    * np.exp(1j * 0.3))
        stream.decode_chunk(buffer, frame.n_symbols)
        assert abs(stream.estimate.gain - true_gain) \
            < abs(true_gain * 1.3 * np.exp(1j * 0.3) - true_gain)

    def test_equalizer_skipped_on_clean_channel(self, rng, preamble,
                                                shaper, stream_config):
        frame, buffer, stream = make_stream_scene(rng, preamble, shaper,
                                                  stream_config)
        stream.decode_chunk(buffer, frame.n_symbols)
        assert stream.equalizer is None  # no ISI -> no training


class TestRegions:
    def test_constellation_switch_at_payload(self, preamble,
                                             stream_config):
        estimate = ChannelEstimate(1.0, 0.0, 0.0, 10.0)
        stream = SymbolStreamDecoder(stream_config, estimate, 0.0,
                                     body_constellation=QPSK)
        boundary = len(preamble) + HEADER_BITS
        assert stream.constellation_at(boundary - 1) is BPSK
        assert stream.constellation_at(boundary) is QPSK

    def test_reversed_regions(self, preamble, stream_config):
        estimate = ChannelEstimate(1.0, 0.0, 0.0, 10.0)
        n = 200
        stream = SymbolStreamDecoder(stream_config, estimate, 0.0,
                                     body_constellation=QPSK,
                                     reversed_total=n)
        boundary = n - (len(preamble) + HEADER_BITS)
        assert stream.constellation_at(boundary - 1) is QPSK
        assert stream.constellation_at(boundary) is BPSK
        assert stream.data_aided_preamble is False

    def test_pilots_guide_tracking(self, rng, preamble, shaper,
                                   stream_config):
        """With pilots covering the body, tracking survives a phase jump
        that blind BPSK decisions would misresolve."""
        frame, buffer, stream = make_stream_scene(rng, preamble, shaper,
                                                  stream_config)
        true_symbols = frame.symbols
        piloted = SymbolStreamDecoder(
            stream_config, stream.estimate, stream.start,
            data_aided_preamble=False, pilots=true_symbols)
        chunk = piloted.decode_chunk(buffer, frame.n_symbols)
        assert np.array_equal(chunk.decisions, true_symbols)
