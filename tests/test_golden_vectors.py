"""Golden-vector regression: end-to-end decodes pinned bit-exactly.

Each fixture under ``tests/golden/`` holds a fixed-seed collision set
(raw capture buffers + acquisition inputs) together with the bits the
full receive chain recovered when the fixture was generated: hidden
pairs through the §4.2.3 pair path, and a three-sender set through the
§4.5 k-way multi decoder. Re-running synchronization + ZigZag decoding
on the *stored* waveforms must reproduce those bits exactly — any
numerical drift anywhere in the chain (sync.acquire, chunk scheduling,
re-encode/subtract, tracking, slicing, k-copy MRC) trips these tests.
This is the end-to-end complement of the kernel-level oracles in
``tests/test_perf_equivalence.py``.

After an *intentional* behavior change, regenerate with::

    PYTHONPATH=src python tests/golden/regenerate.py [fixture ...]

and review the reported BERs before committing the new fixtures.
"""

import importlib.util
import pathlib

import numpy as np
import pytest

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

_spec = importlib.util.spec_from_file_location(
    "golden_regenerate", GOLDEN_DIR / "regenerate.py")
golden = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden)

FIXTURE_NAMES = golden.all_fixture_names()


def load(name: str) -> dict:
    path = GOLDEN_DIR / f"{name}.npz"
    assert path.exists(), (
        f"missing golden fixture {path}; run tests/golden/regenerate.py")
    with np.load(path) as data:
        return {key: np.array(data[key]) for key in data.files}


class TestGoldenVectors:
    @pytest.mark.parametrize("name", FIXTURE_NAMES)
    def test_decode_is_bit_exact(self, name):
        data = load(name)
        decoded = golden.decode_fixture(name, data)
        for label in golden.fixture_labels(name):
            expected = data[f"decoded_{label}"]
            got = decoded[label]
            assert got.size == expected.size, (
                f"{name}/{label}: decoded {got.size} bits, "
                f"fixture pinned {expected.size}")
            mismatches = int(np.count_nonzero(got != expected))
            assert mismatches == 0, (
                f"{name}/{label}: {mismatches} bits differ from the "
                f"pinned decode — the receive chain's numerics changed. "
                f"If intentional, regenerate tests/golden/.")

    @pytest.mark.parametrize("name", FIXTURE_NAMES)
    def test_fixture_decodes_ground_truth(self, name):
        """The pinned decodes are meaningful, not garbage: every fixture
        was generated in a regime where all packets come out clean."""
        data = load(name)
        for label in golden.fixture_labels(name):
            truth = data[f"body_{label}"]
            pinned = data[f"decoded_{label}"][:truth.size]
            ber = float(np.mean(pinned != truth))
            assert ber < 1e-3, f"{name}/{label}: pinned ber {ber}"

    @pytest.mark.parametrize("name", FIXTURE_NAMES)
    def test_regeneration_is_deterministic(self, name):
        """build_fixture reproduces the committed waveforms sample-exactly
        from its seed — the synthesis side (channel, impairments, medium)
        is pinned too, not just the receive side."""
        data = load(name)
        labels = golden.fixture_labels(name)
        rebuilt = golden.build_fixture(name)
        for ci in range(len(labels)):
            key = f"capture{ci}"
            assert np.array_equal(rebuilt[key], data[key]), (
                f"{name}: {key} no longer regenerates bit-exactly — "
                f"synthesis numerics changed. If intentional, regenerate "
                f"tests/golden/.")
        for label in labels:
            assert np.array_equal(rebuilt[f"body_{label}"],
                                  data[f"body_{label}"])
