"""The composable impairment pipeline: stages, wiring, and spec plumbing."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.channel import Channel, ChannelParams
from repro.phy.impairments import (
    AdcQuantizer,
    BurstNoise,
    CwTone,
    DcOffset,
    ImpairmentPipeline,
    IqImbalance,
    RayleighFading,
    RicianFading,
    SfoDrift,
    SoftClipper,
    available_impairments,
    make_impairment,
)
from repro.phy.medium import Transmission, synthesize
from repro.runner.spec import ImpairmentsSpec, ScenarioSpec


def tone(n=2000):
    return np.exp(1j * np.linspace(0.0, 30.0, n))


class TestRegistry:
    def test_all_families_registered(self):
        kinds = set(available_impairments())
        assert {"rayleigh", "rician", "sfo_drift", "clip", "quantize",
                "iq_imbalance", "dc_offset", "cw_tone",
                "burst_noise"} <= kinds

    def test_make_impairment_roundtrip(self):
        stage = make_impairment({"kind": "rayleigh",
                                 "coherence_samples": 99})
        assert stage == RayleighFading(coherence_samples=99)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown impairment"):
            make_impairment({"kind": "warp_drive"})

    def test_missing_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            make_impairment({"coherence_samples": 10})

    def test_bad_parameter_rejected(self):
        with pytest.raises(ConfigurationError, match="bad parameters"):
            make_impairment({"kind": "clip", "nope": 1.0})


class TestFading:
    def test_rayleigh_unit_average_power(self):
        out = RayleighFading(coherence_samples=32).apply(
            np.ones(100_000), np.random.default_rng(0))
        assert abs(np.mean(np.abs(out) ** 2) - 1.0) < 0.1

    def test_block_fading_constant_within_blocks(self):
        out = RayleighFading(coherence_samples=50, block=True).apply(
            np.ones(200), np.random.default_rng(1))
        assert np.allclose(out[:50], out[0])
        assert not np.isclose(out[0], out[50])

    def test_short_coherence_moves_within_packet(self):
        out = RayleighFading(coherence_samples=64).apply(
            np.ones(1000), np.random.default_rng(2))
        assert np.std(np.abs(out)) > 0.1

    def test_rician_high_k_approaches_static(self):
        out = RicianFading(k_factor_db=40.0, coherence_samples=64).apply(
            np.ones(1000), np.random.default_rng(3))
        assert np.std(np.abs(out)) < 0.05
        assert abs(np.mean(np.abs(out) ** 2) - 1.0) < 0.05

    def test_coherence_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RayleighFading(coherence_samples=0)
        with pytest.raises(ConfigurationError):
            RicianFading(coherence_samples=-1)


class TestSfoDrift:
    def test_zero_drift_is_identity(self):
        stage = SfoDrift(0.0)
        assert stage.is_identity
        x = tone()
        assert np.array_equal(stage.apply(x, np.random.default_rng(0)), x)

    def test_drift_accumulates_along_the_packet(self):
        """Early samples barely move; late samples are visibly shifted —
        the signature a constant sampling offset cannot produce."""
        x = tone(4000)
        out = SfoDrift(drift_ppm=500.0).apply(x, np.random.default_rng(0))
        head = slice(8, 100)
        tail = slice(3000, 3900)
        assert np.max(np.abs(out[head] - x[head])) < 1e-2
        assert np.max(np.abs(out[tail] - x[tail])) > 1e-2

    def test_start_sample_carries_accrued_drift(self):
        x = tone(500)
        late = SfoDrift(drift_ppm=500.0).apply(
            x, np.random.default_rng(0), start_sample=4000)
        early = SfoDrift(drift_ppm=500.0).apply(
            x, np.random.default_rng(0), start_sample=0)
        assert not np.allclose(late, early)

    def test_matches_scalar_sinc_interpolation(self):
        from repro.phy.resample import sinc_interpolate

        x = tone(300)
        delta = 400e-6
        out = SfoDrift(drift_ppm=400.0).apply(x, np.random.default_rng(0))
        positions = np.arange(x.size) * (1.0 + delta)
        expected = sinc_interpolate(x, positions)
        assert np.allclose(out, expected, atol=1e-9)


class TestFrontEnd:
    def test_clipper_bounds_magnitude(self):
        x = 5.0 * tone()
        out = SoftClipper(saturation=1.5).apply(
            x, np.random.default_rng(0))
        assert np.max(np.abs(out)) <= 1.5 + 1e-12

    def test_clipper_transparent_well_below_saturation(self):
        x = 0.01 * tone()
        out = SoftClipper(saturation=10.0, smoothness=3.0).apply(
            x, np.random.default_rng(0))
        assert np.allclose(out, x, rtol=1e-6, atol=1e-12)

    def test_quantizer_snaps_to_grid(self):
        stage = AdcQuantizer(enob=4.0, full_scale=2.0)
        out = stage.apply(tone(), np.random.default_rng(0))
        step = 2.0 * 2.0 / 2 ** 4
        assert np.allclose((out.real - step / 2.0) % step, 0.0, atol=1e-9)
        assert len(np.unique(np.round(out.real / step * 2))) <= 2 ** 4

    def test_quantizer_clips_overrange(self):
        out = AdcQuantizer(enob=6.0, full_scale=1.0).apply(
            np.array([10.0 + 10.0j]), np.random.default_rng(0))
        assert np.abs(out[0].real) <= 1.0 and np.abs(out[0].imag) <= 1.0

    def test_iq_imbalance_creates_image(self):
        """A pure positive-frequency tone leaks a mirror image at the
        negative frequency — the classic IQ-imbalance signature."""
        n = 1024
        x = np.exp(2j * np.pi * 0.1 * np.arange(n))
        out = IqImbalance(amplitude_db=1.0, phase_deg=5.0).apply(
            x, np.random.default_rng(0))
        spectrum = np.abs(np.fft.fft(out))
        k = round(0.1 * n)
        assert spectrum[n - k] > 0.01 * spectrum[k]

    def test_dc_offset_shifts_mean(self):
        out = DcOffset(dc_i=0.25, dc_q=-0.5).apply(
            np.zeros(100, dtype=complex), np.random.default_rng(0))
        assert np.allclose(out, 0.25 - 0.5j)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SoftClipper(saturation=0.0)
        with pytest.raises(ConfigurationError):
            AdcQuantizer(enob=0.5)
        with pytest.raises(ConfigurationError):
            AdcQuantizer(full_scale=-1.0)


class TestInterferers:
    def test_cw_tone_adds_requested_power(self):
        out = CwTone(power_db=3.0, freq=0.07, phase=0.0).apply(
            np.zeros(5000, dtype=complex), np.random.default_rng(0))
        assert abs(np.mean(np.abs(out) ** 2) - 10 ** 0.3) < 0.05

    def test_cw_tone_random_phase_comes_from_rng(self):
        zeros = np.zeros(10, dtype=complex)
        a = CwTone(power_db=0.0).apply(zeros, np.random.default_rng(1))
        b = CwTone(power_db=0.0).apply(zeros, np.random.default_rng(2))
        assert not np.allclose(a, b)

    def test_cw_tone_freq_validated(self):
        with pytest.raises(ConfigurationError):
            CwTone(freq=0.7)

    def test_burst_noise_duty_cycle(self):
        out = BurstNoise(power_db=20.0, duty_cycle=0.25,
                         burst_samples=100).apply(
            np.zeros(100_000, dtype=complex), np.random.default_rng(0))
        on_fraction = np.mean(np.abs(out) > 0)
        assert abs(on_fraction - 0.25) < 0.05

    def test_burst_noise_silent_between_bursts(self):
        out = BurstNoise(power_db=10.0, duty_cycle=0.5,
                         burst_samples=50).apply(
            np.zeros(1000, dtype=complex), np.random.default_rng(3))
        gates = np.abs(out).reshape(-1, 50) > 0
        assert np.all(gates.all(axis=1) | (~gates).any(axis=1))

    def test_burst_validation(self):
        with pytest.raises(ConfigurationError):
            BurstNoise(duty_cycle=1.5)
        with pytest.raises(ConfigurationError):
            BurstNoise(burst_samples=0)


class TestPipeline:
    def test_empty_pipeline_is_identity(self):
        pipe = ImpairmentPipeline()
        x = tone()
        assert pipe.is_identity
        assert np.array_equal(pipe.apply(x, np.random.default_rng(0)), x)

    def test_stages_apply_in_order(self):
        """clip-then-offset differs from offset-then-clip."""
        x = 3.0 * tone(200)
        rng = np.random.default_rng(0)
        a = ImpairmentPipeline((SoftClipper(saturation=1.0),
                                DcOffset(dc_i=0.5))).apply(x, rng)
        b = ImpairmentPipeline((DcOffset(dc_i=0.5),
                                SoftClipper(saturation=1.0))).apply(x, rng)
        assert not np.allclose(a, b)

    def test_from_specs_to_specs_roundtrip(self):
        pipe = ImpairmentPipeline.from_specs([
            {"kind": "rician", "k_factor_db": 3.0},
            {"kind": "cw_tone", "power_db": -3.0, "freq": 0.2},
        ])
        assert ImpairmentPipeline.from_specs(pipe.to_specs()) == pipe

    def test_non_impairment_stage_rejected(self):
        with pytest.raises(ConfigurationError, match="not an impairment"):
            ImpairmentPipeline(("garbage",))

    def test_pipeline_is_hashable_and_picklable(self):
        import pickle

        pipe = ImpairmentPipeline((RayleighFading(64), AdcQuantizer(6.0)))
        assert hash(pipe) == hash(pickle.loads(pickle.dumps(pipe)))


class TestChannelWiring:
    def test_channel_applies_per_sender_pipeline(self, rng):
        pipe = ImpairmentPipeline((DcOffset(dc_i=1.0),))
        params = ChannelParams(gain=1.0, impairments=pipe)
        x = tone(100)
        out = Channel(params, rng).apply(x)
        assert np.allclose(out, x + 1.0)

    def test_reconstruct_excludes_impairments(self, rng):
        """The re-encoder must NOT know about impairments — they are the
        unknowable residual that makes cancellation imperfect."""
        pipe = ImpairmentPipeline((RayleighFading(32),))
        params = ChannelParams(gain=2.0, impairments=pipe)
        clean = ChannelParams(gain=2.0)
        x = tone(100)
        assert np.array_equal(
            Channel(params, np.random.default_rng(0)).reconstruct(x, 5),
            Channel(clean, np.random.default_rng(0)).reconstruct(x, 5))

    def test_synthesize_applies_capture_pipeline(self, rng):
        t = Transmission(tone(300), ChannelParams(), 0, "a")
        pipe = ImpairmentPipeline((SoftClipper(saturation=0.25),))
        cap = synthesize([t], 0.0, np.random.default_rng(0),
                         impairments=pipe)
        assert np.max(np.abs(cap.samples)) <= 0.25 + 1e-12
        clean = synthesize([t], 0.0, np.random.default_rng(0))
        assert np.max(np.abs(clean.samples)) > 0.25


class TestImpairmentsSpec:
    TOML = """
[scenario]
kind = "hidden_pair_impaired"
n_trials = 2
seed = 7

[[impairments.sender]]
kind = "rayleigh"
coherence_samples = 256

[[impairments.sender]]
kind = "sfo_drift"
drift_ppm = 120.0

[[impairments.capture]]
kind = "quantize"
enob = 6.0
"""

    @pytest.fixture
    def spec(self, tmp_path):
        path = tmp_path / "impaired.toml"
        path.write_text(self.TOML)
        return ScenarioSpec.from_toml(path)

    def test_from_toml_builds_pipelines(self, spec):
        sender = spec.impairments.sender_pipeline()
        capture = spec.impairments.capture_pipeline()
        assert sender.stages == (RayleighFading(coherence_samples=256),
                                 SfoDrift(drift_ppm=120.0))
        assert capture.stages == (AdcQuantizer(enob=6.0),)

    def test_to_dict_from_dict_roundtrip(self, spec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_override_roundtrip(self, spec):
        swept = spec.with_overrides(
            {"impairments.sender.0.coherence_samples": 64,
             "impairments.capture.0.enob": 4.0})
        assert swept.impairments.sender_pipeline().stages[0] \
            == RayleighFading(coherence_samples=64)
        assert swept.impairments.capture_pipeline().stages[0] \
            == AdcQuantizer(enob=4.0)
        # The original is untouched and the swept spec still round-trips.
        assert spec.impairments.capture_pipeline().stages[0].enob == 6.0
        assert ScenarioSpec.from_dict(swept.to_dict()) == swept

    def test_override_bad_stage_index(self, spec):
        with pytest.raises(ConfigurationError, match="stage"):
            spec.with_override("impairments.sender.9.coherence_samples", 1)

    def test_override_negative_stage_index_rejected(self, spec):
        """-1 must not silently edit the last stage."""
        with pytest.raises(ConfigurationError, match="stage"):
            spec.with_override("impairments.sender.-1.drift_ppm", 5.0)

    def test_runner_rejects_impairments_unaware_scenario(self, spec):
        """A scenario that never reads [impairments] must refuse an
        impaired spec instead of silently decoding the clean channel."""
        import dataclasses

        from repro.runner import MonteCarloRunner

        unaware = dataclasses.replace(spec, kind="zigzag_ber")
        with pytest.raises(ConfigurationError,
                           match="does not apply.*impairments"):
            MonteCarloRunner().run(unaware)

    def test_impairment_aware_flags_match_registry(self):
        from repro.runner.scenarios import (
            available_scenarios,
            scenario_supports_impairments,
        )

        aware = {name for name in available_scenarios()
                 if scenario_supports_impairments(name)}
        assert aware == {"pair", "capture", "testbed_pair",
                         "hidden_pair_decode",
                         "hidden_pair_impaired", "hidden_pair_fading",
                         "hidden_pair_frontend", "ap_stream",
                         "offered_load", "three_senders_stream",
                         "city_scale", "city_multicell"}

    def test_override_bad_path(self, spec):
        with pytest.raises(ConfigurationError, match="impairment override"):
            spec.with_override("impairments.receiver.0.x", 1)

    def test_unknown_hook_rejected(self):
        with pytest.raises(ConfigurationError, match="hooks"):
            ScenarioSpec.from_dict({
                "scenario": {"kind": "pair"},
                "impairments": {"antenna": [{"kind": "rayleigh"}]},
            })

    def test_bad_stage_rejected_at_load_time(self):
        with pytest.raises(ConfigurationError, match="unknown impairment"):
            ScenarioSpec.from_dict({
                "scenario": {"kind": "pair"},
                "impairments": {"sender": [{"kind": "warp_drive"}]},
            })

    def test_empty_impairments_table_stays_out_of_to_dict(self):
        assert "impairments" not in ScenarioSpec(kind="pair").to_dict()

    def test_spec_with_impairments_is_picklable(self, spec):
        import pickle

        assert pickle.loads(pickle.dumps(spec)) == spec


class TestImpairmentsSpecValidation:
    def test_stage_needs_kind(self):
        with pytest.raises(ConfigurationError, match="kind"):
            ImpairmentsSpec(sender=({"coherence_samples": 4},))

    def test_dict_instead_of_array_rejected(self):
        with pytest.raises(ConfigurationError, match="array of tables"):
            ImpairmentsSpec(sender={"kind": "rayleigh"})
