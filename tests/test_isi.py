"""ISI filter and inversion tests (§3.1.3, §4.2.4d)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.isi import IsiFilter, default_isi_taps, invert_fir


class TestIsiFilter:
    def test_identity(self):
        f = IsiFilter.identity()
        x = np.arange(10, dtype=complex)
        assert np.array_equal(f.apply(x), x)
        assert f.is_identity

    def test_main_tap_alignment(self):
        """The dominant tap maps input index k to output index k."""
        f = IsiFilter(np.array([0.1, 1.0, 0.2], complex))
        x = np.zeros(16, complex)
        x[8] = 1.0
        y = f.apply(x)
        assert int(np.argmax(np.abs(y))) == 8

    def test_length_preserved(self):
        f = IsiFilter(default_isi_taps(0.3))
        assert f.apply(np.ones(37, complex)).size == 37

    def test_empty_taps_rejected(self):
        with pytest.raises(ConfigurationError):
            IsiFilter(np.array([], complex))

    def test_linearity(self, rng):
        f = IsiFilter(default_isi_taps(0.4))
        a = rng.standard_normal(50) + 1j * rng.standard_normal(50)
        b = rng.standard_normal(50) + 1j * rng.standard_normal(50)
        assert np.allclose(f.apply(a + 2 * b),
                           f.apply(a) + 2 * f.apply(b))


class TestInversion:
    def test_inverse_cancels_channel(self, rng):
        taps = default_isi_taps(0.3)
        channel = IsiFilter(taps)
        equalizer = channel.inverse(length=41, regularization=1e-6)
        x = rng.standard_normal(200) + 1j * rng.standard_normal(200)
        y = equalizer.apply(channel.apply(x))
        core = slice(25, -25)
        assert np.max(np.abs(y[core] - x[core])) < 0.02

    def test_invert_fir_of_delta(self):
        inv = invert_fir(np.array([1.0 + 0j]), length=9,
                         regularization=1e-9)
        center = int(np.argmax(np.abs(inv)))
        assert abs(inv[center]) == pytest.approx(1.0, rel=1e-3)

    def test_inverse_length_check(self):
        with pytest.raises(ConfigurationError):
            invert_fir(np.ones(5, complex), length=3)

    def test_double_inversion_roundtrip(self, rng):
        taps = default_isi_taps(0.25)
        inv = IsiFilter(taps).inverse(41, 1e-8)
        back = inv.inverse(41, 1e-8)
        x = rng.standard_normal(160) + 1j * rng.standard_normal(160)
        y = back.apply(x)
        direct = IsiFilter(taps).apply(x)
        error = np.mean(np.abs(y[30:-30] - direct[30:-30]) ** 2)
        assert error < 0.01 * np.mean(np.abs(direct) ** 2)


class TestDefaultTaps:
    def test_zero_strength_is_delta(self):
        taps = default_isi_taps(0.0)
        assert np.count_nonzero(np.abs(taps) > 1e-12) == 1

    def test_negative_strength_rejected(self):
        with pytest.raises(ConfigurationError):
            default_isi_taps(-0.5)

    def test_normalized_to_unit_main_tap(self):
        taps = default_isi_taps(0.7)
        assert np.abs(taps).max() == pytest.approx(1.0)
