"""ContinuousAir: causal chunked synthesis with bounded memory."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.link import AirConfig, ContinuousAir
from repro.phy.channel import ChannelParams
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, channel_waveform
from repro.utils.bits import random_bits

TINY_NOISE = 1e-12


def make_tx(preamble, shaper, rng, offset, src=1):
    frame = Frame.make(random_bits(120, rng), src=src, preamble=preamble)
    params = ChannelParams(
        gain=2.0 * np.exp(1j * rng.uniform(0, 2 * np.pi)),
        freq_offset=1e-3, sampling_offset=0.3)
    return Transmission.from_symbols(frame.symbols, shaper, params,
                                     offset, "x")


class TestContinuousAir:
    def test_waveform_reassembles_across_chunks(self, preamble, shaper):
        """A transmission split over several chunks comes out exactly as
        the one-shot channel application would produce it."""
        rng_air = np.random.default_rng(7)
        rng_ref = np.random.default_rng(7)
        air = ContinuousAir(AirConfig(noise_power=TINY_NOISE,
                                      chunk_samples=128), rng_air)
        tx = make_tx(preamble, shaper, np.random.default_rng(1), offset=100)
        air.schedule(tx)
        expected = channel_waveform(tx, rng_ref)
        total = 100 + expected.size + 64
        stream = np.concatenate(
            [air.emit() for _ in range(-(-total // 128))])
        np.testing.assert_allclose(
            stream[100:100 + expected.size], expected, atol=1e-5)
        # Outside the span there is (near-zero) noise only.
        assert np.max(np.abs(stream[:100])) < 1e-5

    def test_overlapping_transmissions_superimpose(self, preamble, shaper):
        rng = np.random.default_rng(3)
        air = ContinuousAir(AirConfig(noise_power=TINY_NOISE,
                                      chunk_samples=256), rng)
        gen = np.random.default_rng(2)
        a = make_tx(preamble, shaper, gen, offset=0, src=1)
        b = make_tx(preamble, shaper, gen, offset=60, src=2)
        air.schedule(a)
        air.schedule(b)
        stream = np.concatenate([air.emit() for _ in range(6)])
        power = np.abs(stream) ** 2
        # The overlap region carries both packets' power.
        assert power[60:200].mean() > 1.5 * power[:50].mean()

    def test_cannot_schedule_into_the_past(self, preamble, shaper, rng):
        air = ContinuousAir(AirConfig(chunk_samples=64),
                            np.random.default_rng(0))
        air.emit()
        with pytest.raises(ConfigurationError):
            air.schedule(make_tx(preamble, shaper, rng, offset=10))

    def test_memory_stays_bounded(self, preamble, shaper, rng):
        """Finished waveforms are dropped: residency tracks in-flight
        transmissions, not session length."""
        air = ContinuousAir(AirConfig(chunk_samples=256),
                            np.random.default_rng(0))
        sizes = []
        offset = 0
        for i in range(20):
            tx = make_tx(preamble, shaper, rng, offset=offset, src=1)
            size = air.schedule(tx)
            sizes.append(size)
            while air.cursor < offset + size:
                air.emit()
            offset = air.cursor + 100
        assert air.samples_emitted >= 20 * min(sizes)
        # One packet in flight at a time: never more than one waveform
        # (plus the chunk) resident.
        assert air.max_resident_samples <= max(sizes) + 256
        assert air.resident_samples == 0

    def test_emit_validates_count(self):
        air = ContinuousAir(AirConfig(), np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            air.emit(0)

    def test_skip_advances_cursor_without_rng(self, preamble, shaper, rng):
        """Skipping idle air consumes no randomness: the waveform emitted
        after a skip is identical to one emitted after synthesizing the
        same gap — the property the event-driven core relies on for
        statistical equivalence of its channel draws."""
        a = ContinuousAir(AirConfig(noise_power=TINY_NOISE,
                                    chunk_samples=128),
                          np.random.default_rng(11))
        b = ContinuousAir(AirConfig(noise_power=TINY_NOISE,
                                    chunk_samples=128),
                          np.random.default_rng(11))
        a.skip(1024)
        assert a.cursor == 1024 and a.samples_skipped == 1024
        b.skip(1024)
        gen = np.random.default_rng(5)
        a.schedule(make_tx(preamble, shaper, gen, offset=1100))
        gen = np.random.default_rng(5)
        b.schedule(make_tx(preamble, shaper, gen, offset=1100))
        np.testing.assert_allclose(a.emit(512), b.emit(512), atol=1e-9)

    def test_skip_refuses_scheduled_spans(self, preamble, shaper, rng):
        air = ContinuousAir(AirConfig(chunk_samples=64),
                            np.random.default_rng(0))
        air.schedule(make_tx(preamble, shaper, rng, offset=500))
        with pytest.raises(ConfigurationError):
            air.skip(600)          # would jump over the waveform's head
        air.skip(500)              # up to the waveform is fine
        assert air.cursor == 500

    def test_skip_validates_count(self):
        air = ContinuousAir(AirConfig(), np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            air.skip(-1)
