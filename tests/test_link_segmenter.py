"""BurstSegmenter: streaming energy hysteresis with chunk-boundary carry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.link import BurstSegmenter, SegmenterConfig


def push_chunked(segmenter, signal, chunk=128):
    bursts = []
    for i in range(0, len(signal), chunk):
        bursts.extend(segmenter.push(signal[i:i + chunk]))
    bursts.extend(segmenter.flush())
    return bursts


def block_signal(spans, total, amplitude=4.0):
    """Zeros with constant-amplitude blocks at the given [lo, hi) spans."""
    y = np.zeros(total, dtype=complex)
    for lo, hi in spans:
        y[lo:hi] = amplitude
    return y


class TestSegmenter:
    def test_silence_yields_no_bursts(self, rng):
        seg = BurstSegmenter(SegmenterConfig(noise_power=1.0))
        noise = (rng.standard_normal(4096)
                 + 1j * rng.standard_normal(4096)) / np.sqrt(2)
        assert push_chunked(seg, noise) == []

    def test_single_block_one_burst(self):
        seg = BurstSegmenter(SegmenterConfig(noise_power=1.0))
        signal = block_signal([(300, 900)], 2048)
        bursts = push_chunked(seg, signal)
        assert len(bursts) == 1
        burst = bursts[0]
        # The burst covers the whole block plus leading context.
        assert burst.start <= 300
        assert burst.end >= 900
        assert not burst.truncated

    def test_block_straddling_chunks_stays_whole(self):
        """The carry path: a burst opened in one chunk closes in a later
        one without splitting or losing samples."""
        seg = BurstSegmenter(SegmenterConfig(noise_power=1.0))
        signal = block_signal([(100, 700)], 1400)
        bursts = push_chunked(seg, signal, chunk=64)
        assert len(bursts) == 1
        assert bursts[0].start <= 100 and bursts[0].end >= 700

    def test_two_separated_blocks_two_bursts(self):
        seg = BurstSegmenter(SegmenterConfig(noise_power=1.0))
        signal = block_signal([(200, 600), (1000, 1400)], 2048)
        bursts = push_chunked(seg, signal)
        assert len(bursts) == 2
        assert bursts[0].end <= bursts[1].start

    def test_envelope_dip_does_not_split(self):
        """Hysteresis: a short dip inside a packet (below the open
        threshold but shorter than the hang window) keeps one burst."""
        cfg = SegmenterConfig(noise_power=1.0, hang_window=64)
        signal = block_signal([(200, 500), (520, 800)], 1400)
        bursts = push_chunked(BurstSegmenter(cfg), signal)
        assert len(bursts) == 1

    def test_force_close_bounds_burst_length(self):
        cfg = SegmenterConfig(noise_power=1.0, max_burst_samples=512)
        seg = BurstSegmenter(cfg)
        signal = block_signal([(100, 3000)], 3400)
        bursts = push_chunked(seg, signal)
        assert seg.forced_closes >= 1
        # The cap is exact: a forced close may not overshoot by however
        # much of the chunk was left (the pre-fix behavior).
        assert all(b.samples.size <= 512 for b in bursts)
        assert all(b.truncated for b in bursts[:-1])
        # Every signal sample still lands in some burst (no gaps).
        covered = sum(b.samples.size for b in bursts)
        assert covered >= 2900

    @pytest.mark.parametrize("chunk", [64, 200, 512, 1024])
    def test_force_close_cap_exact_for_any_chunking(self, chunk):
        """The overshoot bug scaled with chunk size: the bigger the push,
        the further past ``max_burst_samples`` a hot block could run.
        The cap must hold no matter how the stream is chunked."""
        cfg = SegmenterConfig(noise_power=1.0, max_burst_samples=512)
        seg = BurstSegmenter(cfg)
        signal = block_signal([(50, 4000)], 4200)
        bursts = push_chunked(seg, signal, chunk=chunk)
        assert seg.forced_closes >= 1
        assert max(b.samples.size for b in bursts) <= 512
        assert sum(b.samples.size for b in bursts) >= 3900

    def test_force_close_cap_exact_when_close_point_past_room(self):
        """A close hit beyond the remaining room must not drag the burst
        past the cap on its way to the close point."""
        cfg = SegmenterConfig(noise_power=1.0, max_burst_samples=512)
        seg = BurstSegmenter(cfg)
        # One hot block whose natural close (hang window after 700) lies
        # beyond the cap; pushed as a single oversized chunk.
        signal = block_signal([(60, 700)], 1400)
        bursts = list(seg.push(signal)) + seg.flush()
        assert all(b.samples.size <= 512 for b in bursts)
        assert bursts[0].truncated

    def test_skip_advances_absolute_position(self):
        seg = BurstSegmenter(SegmenterConfig(noise_power=1.0))
        seg.skip(100_000)
        signal = block_signal([(300, 700)], 1400)
        bursts = push_chunked(seg, signal)
        assert len(bursts) == 1
        assert 100_200 <= bursts[0].start <= 100_300
        assert bursts[0].end >= 100_700

    def test_skip_never_reaches_into_skipped_air(self):
        """The leading-context reach-back stops at the skip boundary:
        samples before it were never materialized."""
        seg = BurstSegmenter(SegmenterConfig(noise_power=1.0))
        seg.skip(5000)
        # Hot from the very first post-skip sample.
        bursts = list(seg.push(block_signal([(0, 400)], 800))) + seg.flush()
        assert len(bursts) == 1
        assert bursts[0].start >= 5000

    def test_skip_while_open_raises(self):
        seg = BurstSegmenter(SegmenterConfig(noise_power=1.0))
        seg.push(block_signal([(10, 128)], 128))
        assert seg.is_open
        with pytest.raises(ConfigurationError):
            seg.skip(64)

    def test_skip_negative_raises(self):
        seg = BurstSegmenter(SegmenterConfig(noise_power=1.0))
        with pytest.raises(ConfigurationError):
            seg.skip(-1)

    def test_memory_stays_bounded(self, rng):
        """Residency is capped by the open burst + history, regardless of
        how much silence streams through."""
        cfg = SegmenterConfig(noise_power=1.0, max_burst_samples=1024)
        seg = BurstSegmenter(cfg)
        for _ in range(50):
            noise = (rng.standard_normal(512)
                     + 1j * rng.standard_normal(512)) / np.sqrt(2)
            seg.push(noise)
        assert seg.max_resident_samples < 1024 + 512 + 256

    def test_absolute_positions(self):
        """Burst.start is an absolute stream index, not chunk-relative."""
        seg = BurstSegmenter(SegmenterConfig(noise_power=1.0))
        signal = block_signal([(5000, 5400)], 6000)
        bursts = push_chunked(seg, signal, chunk=256)
        assert len(bursts) == 1
        assert 4900 <= bursts[0].start <= 5000

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SegmenterConfig(open_factor=1.0, close_factor=2.0)
        with pytest.raises(ConfigurationError):
            SegmenterConfig(noise_power=0.0)
