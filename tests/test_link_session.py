"""LinkSession: the closed loop actually closing (§4.2.2, §4.4)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.link import LinkSession, SessionConfig, StreamClient


def hidden_pair_clients():
    return [StreamClient("A", 1, 12.0, 3e-3),
            StreamClient("B", 2, 12.0, -2e-3)]


def run_session(design, clients=None, seed=1, **overrides):
    defaults = dict(n_packets=3, payload_bits=200)
    defaults.update(overrides)
    session = LinkSession(SessionConfig(**defaults),
                          clients or hidden_pair_clients(),
                          design=design, rng=np.random.default_rng(seed))
    return session.run()


class TestClosedLoop:
    def test_hidden_pair_zigzag_resolves_via_matching(self):
        """Collide, store, retransmit, match, decode, ACK: the paper's
        core loop, driven end to end by the session itself."""
        report = run_session("zigzag")
        assert not report.timed_out
        assert report.receiver_stats.zigzag_matches > 0
        for name in ("A", "B"):
            stats = report.flows[name]
            assert stats.sent == 3
            assert stats.delivered == 3

    def test_zigzag_beats_80211_on_hidden_pair(self):
        """Same seed, same scenario, the two AP designs head to head."""
        zz = run_session("zigzag")
        std = run_session("802.11")
        assert zz.total_delivered > std.total_delivered
        assert zz.throughput() > std.throughput()

    def test_sensing_clients_never_collide(self):
        """With perfect carrier sensing the DCF serializes the medium:
        packets decode standalone and ZigZag never engages."""
        report = run_session("zigzag", sense_probability=1.0)
        assert report.receiver_stats.zigzag_matches == 0
        assert report.total_delivered == 6
        assert all(s.loss_rate == 0.0 for s in report.flows.values())

    def test_three_clients_hidden_pair_dominated(self):
        clients = hidden_pair_clients() + [StreamClient("C", 3, 11.0, 1e-3)]
        report = run_session("zigzag", clients=clients,
                             hidden_pairs=(("A", "B"),))
        assert not report.timed_out
        assert report.total_delivered >= 8   # out of 9
        assert report.receiver_stats.zigzag_matches > 0

    def test_memory_stays_bounded(self):
        """The acceptance bound: nothing ever materializes the stream."""
        session = LinkSession(SessionConfig(n_packets=5, payload_bits=200),
                              hidden_pair_clients(), design="zigzag",
                              rng=np.random.default_rng(1))
        report = session.run()
        resident = report.counters["max_resident_samples"]
        emitted = report.counters["samples_emitted"]
        assert emitted > 10_000
        assert resident < 0.3 * emitted
        # Per-packet bookkeeping is pruned at resolution, so session
        # state does not grow with session length either.
        assert session.truth == {}
        assert session.decode_ber == {}
        assert session.tx_log == {}
        assert session.acked == set()

    def test_low_offered_load_stretches_the_session(self):
        """Poisson arrivals at low load leave the medium idle between
        packets, so the same packet count takes more air."""
        saturated = run_session("zigzag", sense_probability=1.0)
        trickle = run_session(
            "zigzag", sense_probability=1.0,
            clients=[StreamClient("A", 1, 12.0, 3e-3, offered_load=0.05),
                     StreamClient("B", 2, 12.0, -2e-3, offered_load=0.05)])
        assert trickle.samples_elapsed > 1.5 * saturated.samples_elapsed
        assert trickle.total_delivered == saturated.total_delivered

    def test_deterministic_given_seed(self):
        a = run_session("zigzag", seed=5)
        b = run_session("zigzag", seed=5)
        assert a.samples_elapsed == b.samples_elapsed
        assert a.counters == b.counters
        assert {n: s.delivered for n, s in a.flows.items()} \
            == {n: s.delivered for n, s in b.flows.items()}


class TestHiddenCliques:
    """n mutually-hidden clients: the §4.5 k-way regime, online."""

    def clique_clients(self):
        return [StreamClient("A", 1, 13.0, 3e-3),
                StreamClient("B", 2, 13.0, -2e-3),
                StreamClient("C", 3, 13.0, 1e-3)]

    def test_collision_packets_derived_from_topology(self):
        assert SessionConfig().collision_packets() == 2
        assert SessionConfig(
            hidden_pairs=(("A", "B"),)).collision_packets() == 2
        assert SessionConfig(
            hidden_cliques=(("A", "B", "C"),)).collision_packets() == 3
        # A triangle declared pairwise is still a 3-clique.
        assert SessionConfig(
            hidden_pairs=(("A", "B"), ("B", "C"),
                          ("A", "C"))).collision_packets() == 3
        # Explicit override wins.
        assert SessionConfig(
            hidden_cliques=(("A", "B", "C", "D"),),
            max_collision_packets=2).collision_packets() == 2

    def test_clique_expands_to_all_pairs(self):
        edges = SessionConfig(
            hidden_cliques=(("A", "B", "C"),)).hidden_edges()
        assert edges == {frozenset(p) for p in
                         (("A", "B"), ("A", "C"), ("B", "C"))}

    def test_three_way_clique_session_resolves_multiway(self):
        """The closed loop resolves k-way collision sets end to end:
        three mutually-hidden senders, every collision carrying all
        three packets, decoded through the buffer's match graph."""
        report = run_session("zigzag", clients=self.clique_clients(),
                             seed=2,
                             hidden_cliques=(("A", "B", "C"),))
        rx = report.receiver_stats
        assert rx.multiway_matches > 0
        assert rx.packets_multiway >= 3
        assert report.total_delivered >= 6  # most of the 9 packets land
        assert not report.timed_out

    def test_short_clique_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionConfig(hidden_cliques=(("A",),)).collision_packets()

    def test_unknown_clique_name_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSession(SessionConfig(hidden_cliques=(("A", "B", "Z"),)),
                        self.clique_clients())


class TestAckPlanning:
    """Lemma 4.4.1 generalized to k resolved packets."""

    class _Result:
        def __init__(self, src, seq):
            from repro.phy.frame import FrameHeader
            self.header = FrameHeader(src=src, dst=0, seq=seq,
                                      retry=False, modulation="bpsk",
                                      payload_bits=64)

    def _session(self):
        return LinkSession(SessionConfig(n_packets=1, payload_bits=200),
                           [StreamClient("A", 1, 12.0),
                            StreamClient("B", 2, 12.0),
                            StreamClient("C", 3, 12.0)],
                           rng=np.random.default_rng(0))

    def test_all_ackable_with_long_tails(self):
        session = self._session()
        need = session.sifs + session.ack_air
        # Staggered finishes: each earlier packet leaves the last one a
        # tail long enough for its serialized SIFS+ACK slot.
        session.tx_log = {
            (1, 0): (0, 1000),
            (2, 0): (500, 1000 + 3 * need),
            (3, 0): (900, 1000 + 9 * need),
        }
        results = [self._Result(src, 0) for src in (1, 2, 3)]
        acked = session._plan_acks(results)
        assert sorted(acked) == [(1, 0), (2, 0), (3, 0)]
        assert session.counters["acks_infeasible"] == 0

    def test_short_tail_drops_earliest_ack(self):
        session = self._session()
        # All three end nearly together: earlier finishers have no tail
        # to be ACKed in; only the last-finishing packet is ACKable.
        session.tx_log = {
            (1, 0): (0, 1000),
            (2, 0): (10, 1002),
            (3, 0): (20, 1004),
        }
        results = [self._Result(src, 0) for src in (1, 2, 3)]
        acked = session._plan_acks(results)
        assert acked == [(3, 0)]
        assert session.counters["acks_infeasible"] == 2

    def test_pair_behaviour_unchanged(self):
        session = self._session()
        need = session.sifs + session.ack_air
        session.tx_log = {(1, 0): (0, 1000),
                          (2, 0): (800, 1100 + 2 * need)}
        results = [self._Result(src, 0) for src in (1, 2)]
        assert sorted(session._plan_acks(results)) == [(1, 0), (2, 0)]
        session.tx_log = {(1, 0): (0, 1000), (2, 0): (10, 1002)}
        assert session._plan_acks(results) == [(2, 0)]


class TestBugfixRegressions:
    """Pinned fixes: snapshot sensing, cap accounting, end-of-session
    ACK delivery, and the duplicate-decode counter."""

    def _sensing_session(self):
        return LinkSession(
            SessionConfig(n_packets=1, payload_bits=200,
                          sense_probability=1.0),
            [StreamClient("A", 1, 12.0),
             StreamClient("B", 2, 12.0),
             StreamClient("C", 3, 12.0)],
            rng=np.random.default_rng(0))

    def test_sense_snapshot_excludes_departed_tx(self):
        """A transmission occupies [start, tx_end): at the boundary
        where it ends it is no longer on the air, whether or not its
        owner has stepped yet."""
        from repro.link import RadioState
        s = self._sensing_session()
        a, b, c = s.clients
        b.state = RadioState.TX
        b.tx_end = 1000
        s._refresh_tx_snapshot(980)
        assert s.medium_busy_for(a) and s.medium_busy_for(c)
        assert not s.medium_busy_for(b)       # never senses itself
        s._refresh_tx_snapshot(1000)
        assert not s.medium_busy_for(a) and not s.medium_busy_for(c)

    def test_sense_snapshot_is_step_order_independent(self):
        """Clients stepping earlier in the slot must not change what
        later clients sense: the snapshot is fixed once per boundary.
        Pre-fix, B leaving _TX during its step made C (stepping after)
        see an idle medium in the same slot where A (stepping before)
        saw it busy."""
        from repro.link import RadioState
        s = self._sensing_session()
        a, b, c = s.clients
        b.state = RadioState.TX
        b.tx_end = 990                         # ends mid-slot
        s._refresh_tx_snapshot(980)
        assert s.medium_busy_for(a)
        b.state = RadioState.AWAIT_ACK         # b "steps" first
        assert s.medium_busy_for(c)            # c still senses the TX

    def test_cap_accounts_for_waiting_clients(self):
        """A client idling between Poisson arrivals at the sample cap
        was invisible to the old accounting: it was neither unresolved
        nor had its unoffered packets charged anywhere."""
        for engine in ("event", "slot"):
            report = run_session(
                "zigzag", engine=engine, n_packets=3,
                sense_probability=1.0, max_samples=20_000,
                clients=[StreamClient("A", 1, 12.0, 3e-3,
                                      offered_load=0.001)])
            assert report.timed_out
            assert report.counters["unresolved_at_cap"] == 1
            assert report.counters["packets_unoffered_at_cap"] == 2
            assert report.flows["A"].sent == 1
            assert report.flows["A"].delivered == 1

    def test_finalize_delivers_queued_acks(self):
        """An ACK still queued when the session is cut off (planned by
        the flushed final burst, or pending past the cap) reaches its
        sender instead of evaporating."""
        import heapq
        import time
        s = self._sensing_session()
        st = s.clients[0]
        st._begin_packet(0)
        st._transmit(20)
        s.decode_ber[st.key] = 0.0            # the AP holds the packet
        heapq.heappush(s._ack_queue, (10 ** 9, *st.key))
        report = s._finalize(st.tx_end, True, time.perf_counter())
        assert report.flows["A"].delivered == 1
        # A resolved on the late ACK; only the two never-started
        # clients are charged to the cap.
        assert report.counters["unresolved_at_cap"] == 2
        assert report.counters["acks_dropped"] == 0

    def test_finalize_drops_stale_acks(self):
        import heapq
        import time
        s = self._sensing_session()
        heapq.heappush(s._ack_queue, (500, 9, 9))   # no such packet
        report = s._finalize(1000, False, time.perf_counter())
        assert report.counters["acks_dropped"] == 1

    def test_duplicate_decode_counter(self):
        """Re-decoding a packet the AP already holds counts as a
        duplicate whether or not its ACK ever landed — pre-fix the
        counter also required the key to be in the acked set, missing
        every §4.4 infeasible-ACK retransmission."""
        from types import SimpleNamespace

        from repro.link import Burst
        s = self._sensing_session()
        st = s.clients[0]
        st._begin_packet(0)
        st._transmit(20)
        result = SimpleNamespace(
            header=SimpleNamespace(src=1, seq=0),
            ber_against=lambda truth: 0.0)
        s.ap.receive = lambda samples: [result]
        burst = Burst(samples=np.zeros(8, dtype=complex), start=0)
        s._process_burst(burst, 100)
        assert s.counters["duplicate_decodes"] == 0
        assert st.key not in s.acked            # ACK not delivered yet
        s._process_burst(burst, 200)
        assert s.counters["duplicate_decodes"] == 1


class TestValidation:
    def test_duplicate_src_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSession(SessionConfig(),
                        [StreamClient("A", 1, 12.0),
                         StreamClient("B", 1, 12.0)])

    def test_unknown_hidden_pair_name_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSession(SessionConfig(hidden_pairs=(("A", "Z"),)),
                        hidden_pair_clients())

    def test_offered_load_range(self):
        with pytest.raises(ConfigurationError):
            StreamClient("A", 1, 12.0, offered_load=1.5)

    def test_needs_clients(self):
        with pytest.raises(ConfigurationError):
            LinkSession(SessionConfig(), [])
