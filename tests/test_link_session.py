"""LinkSession: the closed loop actually closing (§4.2.2, §4.4)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.link import LinkSession, SessionConfig, StreamClient


def hidden_pair_clients():
    return [StreamClient("A", 1, 12.0, 3e-3),
            StreamClient("B", 2, 12.0, -2e-3)]


def run_session(design, clients=None, seed=1, **overrides):
    defaults = dict(n_packets=3, payload_bits=200)
    defaults.update(overrides)
    session = LinkSession(SessionConfig(**defaults),
                          clients or hidden_pair_clients(),
                          design=design, rng=np.random.default_rng(seed))
    return session.run()


class TestClosedLoop:
    def test_hidden_pair_zigzag_resolves_via_matching(self):
        """Collide, store, retransmit, match, decode, ACK: the paper's
        core loop, driven end to end by the session itself."""
        report = run_session("zigzag")
        assert not report.timed_out
        assert report.receiver_stats.zigzag_matches > 0
        for name in ("A", "B"):
            stats = report.flows[name]
            assert stats.sent == 3
            assert stats.delivered == 3

    def test_zigzag_beats_80211_on_hidden_pair(self):
        """Same seed, same scenario, the two AP designs head to head."""
        zz = run_session("zigzag")
        std = run_session("802.11")
        assert zz.total_delivered > std.total_delivered
        assert zz.throughput() > std.throughput()

    def test_sensing_clients_never_collide(self):
        """With perfect carrier sensing the DCF serializes the medium:
        packets decode standalone and ZigZag never engages."""
        report = run_session("zigzag", sense_probability=1.0)
        assert report.receiver_stats.zigzag_matches == 0
        assert report.total_delivered == 6
        assert all(s.loss_rate == 0.0 for s in report.flows.values())

    def test_three_clients_hidden_pair_dominated(self):
        clients = hidden_pair_clients() + [StreamClient("C", 3, 11.0, 1e-3)]
        report = run_session("zigzag", clients=clients,
                             hidden_pairs=(("A", "B"),))
        assert not report.timed_out
        assert report.total_delivered >= 8   # out of 9
        assert report.receiver_stats.zigzag_matches > 0

    def test_memory_stays_bounded(self):
        """The acceptance bound: nothing ever materializes the stream."""
        session = LinkSession(SessionConfig(n_packets=5, payload_bits=200),
                              hidden_pair_clients(), design="zigzag",
                              rng=np.random.default_rng(1))
        report = session.run()
        resident = report.counters["max_resident_samples"]
        emitted = report.counters["samples_emitted"]
        assert emitted > 10_000
        assert resident < 0.3 * emitted
        # Per-packet bookkeeping is pruned at resolution, so session
        # state does not grow with session length either.
        assert session.truth == {}
        assert session.decode_ber == {}
        assert session.tx_log == {}
        assert session.acked == set()

    def test_low_offered_load_stretches_the_session(self):
        """Poisson arrivals at low load leave the medium idle between
        packets, so the same packet count takes more air."""
        saturated = run_session("zigzag", sense_probability=1.0)
        trickle = run_session(
            "zigzag", sense_probability=1.0,
            clients=[StreamClient("A", 1, 12.0, 3e-3, offered_load=0.05),
                     StreamClient("B", 2, 12.0, -2e-3, offered_load=0.05)])
        assert trickle.samples_elapsed > 1.5 * saturated.samples_elapsed
        assert trickle.total_delivered == saturated.total_delivered

    def test_deterministic_given_seed(self):
        a = run_session("zigzag", seed=5)
        b = run_session("zigzag", seed=5)
        assert a.samples_elapsed == b.samples_elapsed
        assert a.counters == b.counters
        assert {n: s.delivered for n, s in a.flows.items()} \
            == {n: s.delivered for n, s in b.flows.items()}


class TestHiddenCliques:
    """n mutually-hidden clients: the §4.5 k-way regime, online."""

    def clique_clients(self):
        return [StreamClient("A", 1, 13.0, 3e-3),
                StreamClient("B", 2, 13.0, -2e-3),
                StreamClient("C", 3, 13.0, 1e-3)]

    def test_collision_packets_derived_from_topology(self):
        assert SessionConfig().collision_packets() == 2
        assert SessionConfig(
            hidden_pairs=(("A", "B"),)).collision_packets() == 2
        assert SessionConfig(
            hidden_cliques=(("A", "B", "C"),)).collision_packets() == 3
        # A triangle declared pairwise is still a 3-clique.
        assert SessionConfig(
            hidden_pairs=(("A", "B"), ("B", "C"),
                          ("A", "C"))).collision_packets() == 3
        # Explicit override wins.
        assert SessionConfig(
            hidden_cliques=(("A", "B", "C", "D"),),
            max_collision_packets=2).collision_packets() == 2

    def test_clique_expands_to_all_pairs(self):
        edges = SessionConfig(
            hidden_cliques=(("A", "B", "C"),)).hidden_edges()
        assert edges == {frozenset(p) for p in
                         (("A", "B"), ("A", "C"), ("B", "C"))}

    def test_three_way_clique_session_resolves_multiway(self):
        """The closed loop resolves k-way collision sets end to end:
        three mutually-hidden senders, every collision carrying all
        three packets, decoded through the buffer's match graph."""
        report = run_session("zigzag", clients=self.clique_clients(),
                             seed=2,
                             hidden_cliques=(("A", "B", "C"),))
        rx = report.receiver_stats
        assert rx.multiway_matches > 0
        assert rx.packets_multiway >= 3
        assert report.total_delivered >= 6  # most of the 9 packets land
        assert not report.timed_out

    def test_short_clique_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionConfig(hidden_cliques=(("A",),)).collision_packets()

    def test_unknown_clique_name_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSession(SessionConfig(hidden_cliques=(("A", "B", "Z"),)),
                        self.clique_clients())


class TestAckPlanning:
    """Lemma 4.4.1 generalized to k resolved packets."""

    class _Result:
        def __init__(self, src, seq):
            from repro.phy.frame import FrameHeader
            self.header = FrameHeader(src=src, dst=0, seq=seq,
                                      retry=False, modulation="bpsk",
                                      payload_bits=64)

    def _session(self):
        return LinkSession(SessionConfig(n_packets=1, payload_bits=200),
                           [StreamClient("A", 1, 12.0),
                            StreamClient("B", 2, 12.0),
                            StreamClient("C", 3, 12.0)],
                           rng=np.random.default_rng(0))

    def test_all_ackable_with_long_tails(self):
        session = self._session()
        need = session.sifs + session.ack_air
        # Staggered finishes: each earlier packet leaves the last one a
        # tail long enough for its serialized SIFS+ACK slot.
        session.tx_log = {
            (1, 0): (0, 1000),
            (2, 0): (500, 1000 + 3 * need),
            (3, 0): (900, 1000 + 9 * need),
        }
        results = [self._Result(src, 0) for src in (1, 2, 3)]
        acked = session._plan_acks(results)
        assert sorted(acked) == [(1, 0), (2, 0), (3, 0)]
        assert session.counters["acks_infeasible"] == 0

    def test_short_tail_drops_earliest_ack(self):
        session = self._session()
        # All three end nearly together: earlier finishers have no tail
        # to be ACKed in; only the last-finishing packet is ACKable.
        session.tx_log = {
            (1, 0): (0, 1000),
            (2, 0): (10, 1002),
            (3, 0): (20, 1004),
        }
        results = [self._Result(src, 0) for src in (1, 2, 3)]
        acked = session._plan_acks(results)
        assert acked == [(3, 0)]
        assert session.counters["acks_infeasible"] == 2

    def test_pair_behaviour_unchanged(self):
        session = self._session()
        need = session.sifs + session.ack_air
        session.tx_log = {(1, 0): (0, 1000),
                          (2, 0): (800, 1100 + 2 * need)}
        results = [self._Result(src, 0) for src in (1, 2)]
        assert sorted(session._plan_acks(results)) == [(1, 0), (2, 0)]
        session.tx_log = {(1, 0): (0, 1000), (2, 0): (10, 1002)}
        assert session._plan_acks(results) == [(2, 0)]


class TestValidation:
    def test_duplicate_src_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSession(SessionConfig(),
                        [StreamClient("A", 1, 12.0),
                         StreamClient("B", 1, 12.0)])

    def test_unknown_hidden_pair_name_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSession(SessionConfig(hidden_pairs=(("A", "Z"),)),
                        hidden_pair_clients())

    def test_offered_load_range(self):
        with pytest.raises(ConfigurationError):
            StreamClient("A", 1, 12.0, offered_load=1.5)

    def test_needs_clients(self):
        with pytest.raises(ConfigurationError):
            LinkSession(SessionConfig(), [])
