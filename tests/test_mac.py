"""MAC substrate tests: timing, backoff, ACK lemma, DCF, hidden scenarios."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mac.ack import (
    AckPlanner,
    ack_offset_lower_bound,
    ack_offset_probability,
    plan_synchronous_acks,
)
from repro.mac.backoff import ExponentialBackoff, FixedWindowBackoff
from repro.mac.dcf import DcfConfig, DcfSimulator, TransmissionEvent
from repro.mac.hidden import HiddenScenario, collision_offset_pairs, slot_to_samples
from repro.mac.timing import TIMING_80211A, TIMING_80211G, Timing


class TestTiming:
    def test_80211g_values_match_paper(self):
        t = TIMING_80211G
        assert t.slot_us == 20.0
        assert t.sifs_us == 10.0
        assert t.ack_us == 30.0

    def test_difs(self):
        assert TIMING_80211G.difs_us == 10.0 + 40.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Timing("bad", slot_us=0.0, sifs_us=1, ack_us=1, cw_min=1,
                   cw_max=2)
        with pytest.raises(ConfigurationError):
            Timing("bad", slot_us=1, sifs_us=1, ack_us=1, cw_min=8,
                   cw_max=4)

    def test_backoff_us(self):
        assert TIMING_80211A.backoff_us(3) == 27.0
        with pytest.raises(ConfigurationError):
            TIMING_80211A.backoff_us(-1)


class TestBackoff:
    def test_fixed_window_range(self, rng):
        picker = FixedWindowBackoff(cw=8)
        slots = [picker.pick(attempt, rng) for attempt in range(5)
                 for _ in range(200)]
        assert min(slots) >= 0 and max(slots) <= 8

    def test_exponential_doubles_and_caps(self):
        picker = ExponentialBackoff(cw_min=31, cw_max=1023)
        assert picker.window(0) == 31
        assert picker.window(1) == 63
        assert picker.window(2) == 127
        assert picker.window(10) == 1023

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FixedWindowBackoff(cw=0)
        with pytest.raises(ConfigurationError):
            ExponentialBackoff(cw_min=0)
        with pytest.raises(ConfigurationError):
            FixedWindowBackoff(cw=4).window(-1)


class TestAckLemma:
    def test_paper_bound_exact(self):
        """Lemma 4.4.1: the 802.11g bound evaluates to exactly 0.9375."""
        assert ack_offset_lower_bound() == pytest.approx(0.9375)

    def test_monte_carlo_near_bound(self):
        probability = ack_offset_probability(n_trials=200_000)
        # The two-sided MC event is slightly stricter than the one-sided
        # analytic bound; it must still be high.
        assert 0.85 <= probability <= 0.9375 + 0.01

    def test_probability_grows_with_cw(self):
        p_small = ack_offset_probability(cw=8, n_trials=50_000)
        p_large = ack_offset_probability(cw=64, n_trials=50_000)
        assert p_large > p_small

    def test_planner_feasibility(self):
        planner = AckPlanner()
        plan = planner.plan(offset_us=100.0, first_duration_us=1000.0,
                            second_duration_us=1000.0)
        assert plan.feasible
        assert plan.ack_first_at == pytest.approx(1010.0)
        tight = planner.plan(offset_us=10.0, first_duration_us=1000.0,
                             second_duration_us=1000.0)
        assert not tight.feasible

    def test_planner_padding_covers_gap(self):
        plan = AckPlanner().plan(offset_us=200.0,
                                 first_duration_us=1000.0,
                                 second_duration_us=1000.0)
        # padding fills from end of first ack to the second packet's end
        assert plan.padding_us == pytest.approx(
            1200.0 - (1000.0 + 10.0 + 30.0))

    def test_planner_validation(self):
        with pytest.raises(ConfigurationError):
            AckPlanner().plan(offset_us=-1.0, first_duration_us=10,
                              second_duration_us=10)


class TestSynchronousAckSet:
    """plan_synchronous_acks: Lemma 4.4.1 generalized to k packets."""

    SIFS, ACK = 10.0, 30.0

    def test_pair_matches_planner(self):
        """The k = 2 case agrees with AckPlanner.plan on both sides of
        the feasibility boundary (same rule, one source of truth)."""
        planner = AckPlanner()
        for offset_us in (5.0, 39.0, 40.0, 41.0, 200.0):
            plan = planner.plan(offset_us=offset_us,
                                first_duration_us=1000.0,
                                second_duration_us=1000.0)
            flags = plan_synchronous_acks(
                [1000.0], offset_us + 1000.0, self.SIFS, self.ACK)
            assert flags == [plan.feasible], offset_us

    def test_serialized_slots_consume_the_tail(self):
        # Two earlier packets whose ACK windows both fit, but only
        # because the second ACK is pushed past the first.
        flags = plan_synchronous_acks([0.0, 10.0], 100.0,
                                      self.SIFS, self.ACK)
        assert flags == [True, True]
        # The push matters: the third packet's own window ([30, 60])
        # fits the tail easily, but serialization behind the first two
        # ACKs runs it past the last packet's end.
        flags = plan_synchronous_acks([0.0, 10.0, 20.0], 95.0,
                                      self.SIFS, self.ACK)
        assert flags == [True, True, False]

    def test_completed_ack_frees_the_air(self):
        """A long-finished earlier ACK must not block a later one whose
        own window fits (regression: the slot count used to be charged
        against every later packet's tail)."""
        flags = plan_synchronous_acks([0.0, 300.0], 400.0,
                                      self.SIFS, self.ACK)
        assert flags == [True, True]


class TestDcf:
    def make_sim(self, hidden, seed=0, duration=300.0):
        sense = np.array([[True, not hidden], [not hidden, True]])
        return DcfSimulator(2, sense,
                            DcfConfig(packet_duration_us=duration),
                            np.random.default_rng(seed))

    def test_hidden_pair_collides(self):
        trace = self.make_sim(hidden=True).run(10)
        assert len(trace.collision_groups()) > 0

    def test_sensing_pair_rarely_collides(self):
        trace = self.make_sim(hidden=False).run(10)
        clean = len(trace.clean_events())
        collided = sum(len(g) for g in trace.collision_groups())
        assert clean > collided

    def test_all_packets_resolved(self):
        trace = self.make_sim(hidden=True).run(5)
        resolved = len(trace.delivered) + len(trace.dropped)
        assert resolved == 10  # 2 senders x 5 packets

    def test_event_overlap_helper(self):
        a = TransmissionEvent(0, 0, 0, 0.0, 10.0)
        b = TransmissionEvent(1, 0, 0, 5.0, 15.0)
        c = TransmissionEvent(1, 1, 0, 10.0, 20.0)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_sense_matrix_validation(self):
        with pytest.raises(ConfigurationError):
            DcfSimulator(3, np.eye(2, dtype=bool))


class TestHiddenScenario:
    def test_slot_to_samples_paper_config(self):
        # 20us slot at 500 kb/s BPSK, 2 samples/symbol -> 20 samples.
        assert slot_to_samples(TIMING_80211G, 500e3) == 20

    def test_offsets_multiple_of_slot(self):
        scenario = HiddenScenario(n_senders=3, slot_samples=20)
        rounds = scenario.collision_offsets(np.random.default_rng(0), 4)
        assert len(rounds) == 4
        for offsets in rounds:
            assert min(offsets) == 0
            assert all(o % 20 == 0 for o in offsets)

    def test_offset_pairs(self):
        pairs = collision_offset_pairs(np.random.default_rng(1), n_pairs=50,
                                       slot_samples=20)
        assert len(pairs) == 50
        assert all(d1 % 20 == 0 and d2 % 20 == 0 for d1, d2 in pairs)

    def test_needs_two_senders(self):
        with pytest.raises(ConfigurationError):
            HiddenScenario(n_senders=1)
