"""Medium/synthesis tests: superposition, offsets, ground truth."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.channel import ChannelParams
from repro.phy.medium import Transmission, synthesize


class TestTransmission:
    def test_from_symbols_positions(self, shaper, rng):
        sym = (2 * rng.integers(0, 2, 40) - 1).astype(complex)
        t = Transmission.from_symbols(sym, shaper, ChannelParams(), 17, "x")
        assert t.symbol0 == 17 + shaper.delay
        assert t.n_symbols == 40
        assert t.end == 17 + shaper.waveform_length(40)

    def test_negative_offset_rejected(self, shaper):
        with pytest.raises(ConfigurationError):
            Transmission.from_symbols(np.ones(4, complex), shaper,
                                      ChannelParams(), -1)

    def test_empty_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            Transmission(np.zeros(0, complex), ChannelParams(), 0)


class TestSynthesize:
    def test_superposition_is_linear(self, shaper, rng):
        sym_a = (2 * rng.integers(0, 2, 30) - 1).astype(complex)
        sym_b = (2 * rng.integers(0, 2, 30) - 1).astype(complex)
        pa = ChannelParams(gain=2.0)
        pb = ChannelParams(gain=1.0 + 1j)
        ta = Transmission.from_symbols(sym_a, shaper, pa, 0, "a")
        tb = Transmission.from_symbols(sym_b, shaper, pb, 20, "b")
        cap = synthesize([ta, tb], 0.0, rng)
        assert np.allclose(cap.samples,
                           cap.clean_components[0] + cap.clean_components[1])

    def test_leading_shifts_everything(self, shaper, rng):
        sym = np.ones(10, complex)
        t = Transmission.from_symbols(sym, shaper, ChannelParams(), 5, "a")
        cap = synthesize([t], 0.0, rng, leading=8)
        assert cap.transmissions[0].offset == 13
        assert cap.transmissions[0].symbol0 == 13 + shaper.delay
        assert np.allclose(cap.samples[:8], 0.0)

    def test_noise_floor(self, shaper, rng):
        sym = np.ones(10, complex)
        t = Transmission.from_symbols(sym, shaper, ChannelParams(0j + 1e-9),
                                      0, "a")
        cap = synthesize([t], 4.0, rng, tail=5000)
        assert np.mean(np.abs(cap.samples) ** 2) == pytest.approx(4.0,
                                                                  rel=0.05)

    def test_collision_flag(self, shaper, rng):
        sym = np.ones(10, complex)
        one = [Transmission.from_symbols(sym, shaper, ChannelParams(), 0)]
        two = one + [Transmission.from_symbols(sym, shaper,
                                               ChannelParams(), 4)]
        assert not synthesize(one, 0.1, rng).is_collision
        assert synthesize(two, 0.1, rng).is_collision

    def test_requires_transmissions(self, rng):
        with pytest.raises(ConfigurationError):
            synthesize([], 1.0, rng)
