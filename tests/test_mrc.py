"""Maximal ratio combining tests, including the paper's footnote example."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.constellation import BPSK
from repro.receiver.mrc import mrc_combine, mrc_decide


class TestCombine:
    def test_paper_footnote_example(self):
        """§4.1 footnote: receptions -0.2 and +0.5 combine to +0.15 -> '1'."""
        combined = mrc_combine([[-0.2 + 0j], [0.5 + 0j]])
        assert combined[0] == pytest.approx(0.15)
        assert mrc_decide([[-0.2 + 0j], [0.5 + 0j]], BPSK).tolist() == [1]

    def test_weights(self):
        combined = mrc_combine([[1.0 + 0j], [0.0 + 0j]], weights=[3, 1])
        assert combined[0] == pytest.approx(0.75)

    def test_per_symbol_weights(self):
        streams = [np.array([1.0, 1.0], complex),
                   np.array([-1.0, -1.0], complex)]
        weights = [1.0, np.array([0.0, 3.0])]
        combined = mrc_combine(streams, weights)
        assert combined[0] == pytest.approx(1.0)
        assert combined[1] == pytest.approx(-0.5)

    def test_reduces_noise_variance(self, rng):
        truth = BPSK.modulate(rng.integers(0, 2, 4000))
        copies = [truth + 0.8 * (rng.standard_normal(4000)
                                 + 1j * rng.standard_normal(4000))
                  for _ in range(2)]
        single_err = np.mean(BPSK.demodulate(copies[0])
                             != BPSK.demodulate(truth))
        combined_err = np.mean(mrc_decide(copies, BPSK)
                               != BPSK.demodulate(truth))
        assert combined_err < single_err

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mrc_combine([])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            mrc_combine([np.ones(3, complex), np.ones(4, complex)])

    def test_weight_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            mrc_combine([np.ones(3, complex)], weights=[1, 2])

    def test_zero_total_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            mrc_combine([np.ones(2, complex)], weights=[0.0])
