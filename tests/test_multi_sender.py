"""Beyond two interferers (§4.5): three packets across three collisions."""

import numpy as np
import pytest

from repro.phy.channel import ChannelParams
from repro.phy.constellation import BPSK
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, synthesize
from repro.phy.sync import Synchronizer
from repro.utils.bits import random_bits
from repro.zigzag.decoder import ZigZagPairDecoder
from repro.zigzag.engine import PacketSpec, PlacementParams


def three_sender_scenario(rng, preamble, shaper, offset_rounds,
                          snr_db=13.0, payload=160):
    names = ["A", "B", "C"]
    amp = np.sqrt(10 ** (snr_db / 10))
    frames = {n: Frame.make(random_bits(payload, rng), src=i + 1,
                            preamble=preamble)
              for i, n in enumerate(names)}
    freqs = {n: float(rng.uniform(-4e-3, 4e-3)) for n in names}
    captures = []
    for offsets in offset_rounds:
        txs = []
        for n, off in zip(names, offsets):
            params = ChannelParams(
                gain=amp * np.exp(1j * rng.uniform(0, 2 * np.pi)),
                freq_offset=freqs[n],
                sampling_offset=float(rng.uniform(0, 1)),
                phase_noise_std=1e-3)
            txs.append(Transmission.from_symbols(
                frames[n].symbols, shaper, params, off, n))
        captures.append(synthesize(txs, 1.0, rng, leading=8, tail=30))
    sync = Synchronizer(preamble, shaper, threshold=0.3)
    placements = []
    for ci, capture in enumerate(captures):
        for t in capture.transmissions:
            est = sync.acquire(capture.samples, t.symbol0,
                               coarse_freq=freqs[t.label],
                               noise_power=1.0)
            placements.append(PlacementParams(
                t.label, ci, t.symbol0 + est.sampling_offset, est))
    specs = {n: PacketSpec(n, frames[n].n_symbols, BPSK) for n in names}
    return captures, frames, specs, placements


class TestThreeSenders:
    def test_three_collisions_decode_three_packets(self, rng, preamble,
                                                   shaper, stream_config):
        offset_rounds = [(0, 80, 180), (60, 0, 140), (100, 40, 0)]
        captures, frames, specs, placements = three_sender_scenario(
            rng, preamble, shaper, offset_rounds)
        outcome = ZigZagPairDecoder(stream_config,
                                    use_backward=False).decode(
            [c.samples for c in captures], specs, placements)
        for name in frames:
            assert outcome.results[name].ber_against(
                frames[name].body_bits) < 1e-2, name

    def test_fig_6_1_chain_pattern(self, rng, preamble, shaper,
                                   stream_config):
        """§6(b): four packets, never more than two colliding at a time.

        P1+P2 collide, P2+P3 collide, P3+P4 collide, plus P1 re-colliding
        with P2 at a different offset to bootstrap — the general scheduler
        unravels the chain.
        """
        names = ["P1", "P2", "P3", "P4"]
        amp = np.sqrt(10 ** 1.3)
        frames = {n: Frame.make(random_bits(160, rng), src=i + 1,
                                preamble=preamble)
                  for i, n in enumerate(names)}
        freqs = {n: float(rng.uniform(-4e-3, 4e-3)) for n in names}

        def tx(name, offset):
            params = ChannelParams(
                gain=amp * np.exp(1j * rng.uniform(0, 2 * np.pi)),
                freq_offset=freqs[name],
                sampling_offset=float(rng.uniform(0, 1)),
                phase_noise_std=1e-3)
            return Transmission.from_symbols(frames[name].symbols, shaper,
                                             params, offset, name)

        pairs = [("P1", "P2", 120), ("P2", "P3", 70), ("P3", "P4", 150),
                 ("P1", "P2", 40)]
        captures = [synthesize([tx(a, 0), tx(b, off)], 1.0, rng,
                               leading=8, tail=30)
                    for a, b, off in pairs]
        sync = Synchronizer(preamble, shaper, threshold=0.3)
        placements = []
        for ci, capture in enumerate(captures):
            for t in capture.transmissions:
                est = sync.acquire(capture.samples, t.symbol0,
                                   coarse_freq=freqs[t.label],
                                   noise_power=1.0)
                placements.append(PlacementParams(
                    t.label, ci, t.symbol0 + est.sampling_offset, est))
        specs = {n: PacketSpec(n, frames[n].n_symbols, BPSK)
                 for n in names}
        outcome = ZigZagPairDecoder(stream_config,
                                    use_backward=False).decode(
            [c.samples for c in captures], specs, placements)
        for name in names:
            assert outcome.results[name].ber_against(
                frames[name].body_bits) < 2e-2, name

    def test_identical_offset_rounds_fail(self, rng, preamble, shaper,
                                          stream_config):
        offset_rounds = [(0, 60, 120)] * 3
        captures, frames, specs, placements = three_sender_scenario(
            rng, preamble, shaper, offset_rounds)
        outcome = ZigZagPairDecoder(stream_config,
                                    use_backward=False).decode(
            [c.samples for c in captures], specs, placements)
        assert not outcome.all_decoded
