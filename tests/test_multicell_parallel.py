"""The parallel multi-cell coordinator: bit-identity, watchdogs, arena.

Three contracts under test (see ``repro.link.parallel``):

- **Bit-identity** — the process-parallel coupled coordinator produces
  a :class:`~repro.link.MultiCellReport` identical to the sequential
  one (per-cell flows, receiver stats, counters, elapsed medium time)
  at *any* worker count, because injected phases are keyed by
  (window, src AP, dst AP, transmission seq) rather than drawn from a
  shared stream and every victim's injections apply in canonical order.
- **Degrade-to-sequential** — a hung, killed, raising, or corrupting
  cell worker (``chaos.FaultSpec``) trips the barrier watchdog; the
  block reruns sequentially in the parent with identical results and
  zero leaked shared-memory segments.
- **Waveform arena** — the variable-length shared-memory exchange path
  round-trips exact samples, falls back to inline refs on overflow,
  and surfaces corruption through CRC verification.
"""

import numpy as np
import pytest

from repro.errors import CaptureTransportError, ConfigurationError
from repro.link import MultiCellConfig
from repro.link.events import EventEngine
from repro.runner.builders import build_city_session
from repro.runner.chaos import FaultSpec
from repro.runner.shm import WaveformArena, find_leaked_arenas
from repro.runner.spec import ScenarioSpec


def city_spec(n_aps=3, n_clients=12, area_m=70.0, seed=11, n_packets=1,
              **deployment_extra) -> ScenarioSpec:
    table = {"n_aps": n_aps, "n_clients": n_clients, "area_m": area_m,
             "seed": seed, **deployment_extra}
    return ScenarioSpec.from_dict({
        "scenario": {"kind": "city_multicell", "n_packets": n_packets,
                     "payload_bits": 96, "design": "zigzag"},
        "deployment": table,
    })


def run_block(workers, *, seed=11, faults=None, step_timeout=60.0,
              **spec_extra):
    spec = city_spec(coupled_workers=workers, **spec_extra)
    city = build_city_session(spec, np.random.default_rng(seed), "zigzag")
    if faults is not None or step_timeout != 60.0:
        from dataclasses import replace
        city.config = replace(city.config, faults=faults,
                              step_timeout_s=step_timeout)
    return city, city.run()


def strip(report):
    """Everything the bit-identity contract covers (wall time and
    execution metadata — elapsed_s, workers, degraded — excluded)."""
    cells = {
        ap: (r.design, r.flows, r.samples_elapsed, r.packet_samples,
             r.receiver_stats, dict(r.counters), r.timed_out)
        for ap, r in report.cells.items()
    }
    return (report.design, cells, dict(report.counters))


class TestParallelEquivalence:
    def test_bit_identical_reports_any_worker_count(self):
        _, sequential = run_block(1)
        stripped = strip(sequential)
        n_cells = len(sequential.cells)
        for workers in (2, n_cells):
            city, parallel = run_block(workers)
            assert parallel.workers == min(workers, n_cells)
            assert not parallel.degraded
            assert strip(parallel) == stripped
            # Counter types match too (ints stay ints across the merge).
            assert repr(parallel.counters) == repr(sequential.counters)
        assert find_leaked_arenas() == []

    def test_bit_identical_with_dense_injections(self):
        # A tighter block with real cross-cell injections in flight.
        kw = dict(n_aps=4, n_clients=24, area_m=80.0, n_packets=2)
        _, sequential = run_block(1, **kw)
        assert sequential.counters["injections"] > 0
        _, parallel = run_block(0, **kw)   # 0 = one worker per cell
        assert parallel.workers == len(sequential.cells)
        assert strip(parallel) == strip(sequential)
        assert find_leaked_arenas() == []

    def test_workers_one_stays_in_process(self):
        city, report = run_block(1)
        assert report.workers == 1 and not report.degraded
        assert city.effective_workers() == 1

    def test_builder_threads_coupled_workers(self):
        spec = city_spec(coupled_workers=2)
        city = build_city_session(spec, np.random.default_rng(1),
                                  "zigzag")
        assert city.config.workers == 2
        assert city.effective_workers() == 2

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MultiCellConfig(workers=-1)
        with pytest.raises(ConfigurationError):
            MultiCellConfig(step_timeout_s=0.0)
        with pytest.raises(ConfigurationError):
            city_spec(coupled_workers=-2).deployment.validate()


class TestPhaseKeying:
    """Satellite regression: injected phases are a pure function of
    (window, src AP, dst AP, seq) — evaluation order cannot matter."""

    def _session(self, seed=11):
        return build_city_session(city_spec(), np.random.default_rng(seed),
                                  "zigzag")

    def test_order_independent(self):
        city = self._session()
        keys = [(w, s, d, q) for w in (1, 2) for s in (0, 1)
                for d in (0, 1) for q in (0, 3)]
        forward = [city._injected_phase(*k) for k in keys]
        backward = [city._injected_phase(*k) for k in reversed(keys)]
        assert forward == backward[::-1]

    def test_distinct_keys_distinct_phases(self):
        city = self._session()
        phases = {city._injected_phase(w, s, d, q)
                  for w in range(3) for s in range(2)
                  for d in range(2) for q in range(2)}
        assert len(phases) == 24

    def test_entropy_rides_constructor_rng(self):
        a, b = self._session(seed=1), self._session(seed=2)
        assert a._injected_phase(1, 0, 1, 0) \
            != b._injected_phase(1, 0, 1, 0)

    def test_victim_prefilter_matches_snr_matrix(self):
        city = self._session()
        floor = city.config.interference_floor_db
        for src in city.cells:
            for client, _snr in src.lookup.values():
                expected = [
                    (dst.index,
                     float(city.deployment.ap_client_snr(dst.plan.ap,
                                                         client)))
                    for dst in city.cells
                    if dst.index != src.index
                    and city.deployment.ap_client_snr(dst.plan.ap,
                                                      client) >= floor]
                assert list(city._victims[client]) == expected

    def test_cover_air_is_public(self):
        city = self._session()
        engine = city.cells[0].engine
        assert isinstance(engine, EventEngine)
        assert engine.cover_air.__func__ is EventEngine._cover_air


class TestDegradeToSequential:
    """Injected worker faults must cost wall-clock, never correctness."""

    @pytest.fixture(scope="class")
    def sequential(self):
        _, report = run_block(1)
        return strip(report)

    def _degraded_run(self, faults, sequential):
        city, report = run_block(2, faults=faults, step_timeout=1.0)
        assert report.degraded
        assert report.workers == 2
        assert city.degrade_reason is not None
        assert strip(report) == sequential
        assert find_leaked_arenas() == []
        return city

    def test_hung_worker_trips_barrier_watchdog(self, sequential):
        city = self._degraded_run(
            FaultSpec(hang_trial_prob=1.0, hang_seconds=4.0, seed=3),
            sequential)
        assert "unresponsive" in city.degrade_reason

    def test_killed_worker_degrades(self, sequential):
        city = self._degraded_run(
            FaultSpec(kill_worker_prob=1.0, seed=3), sequential)
        assert "died" in city.degrade_reason

    def test_raising_worker_degrades(self, sequential):
        city = self._degraded_run(
            FaultSpec(raise_in_trial_prob=1.0, seed=3), sequential)
        assert "FaultInjectionError" in city.degrade_reason

    def test_corrupted_waveform_fails_checksum_then_degrades(
            self, sequential):
        city = self._degraded_run(
            FaultSpec(corrupt_shm_slot_prob=1.0, seed=3), sequential)
        assert "checksum" in city.degrade_reason


class TestWaveformArena:
    def test_round_trip_variable_lengths(self):
        arena = WaveformArena.create(2, 256)
        try:
            rng = np.random.default_rng(0)
            waves = [rng.normal(size=n) + 1j * rng.normal(size=n)
                     for n in (3, 100, 153)]
            refs = [arena.write(0, w, checksum=True) for w in waves]
            for ref, wave in zip(refs, waves):
                assert ref.region == 0
                np.testing.assert_array_equal(ref.resolve(arena), wave)
        finally:
            arena.close()

    def test_reset_reclaims_region(self):
        arena = WaveformArena.create(1, 16)
        try:
            first = arena.write(0, np.ones(10, dtype=complex))
            assert first.offset == 0
            arena.reset(0)
            second = arena.write(0, np.full(12, 2.0, dtype=complex))
            assert second.offset == 0
            np.testing.assert_array_equal(
                second.resolve(arena), np.full(12, 2.0, dtype=complex))
        finally:
            arena.close()

    def test_overflow_falls_back_inline(self):
        arena = WaveformArena.create(1, 8)
        try:
            arena.write(0, np.ones(6, dtype=complex))
            wave = np.arange(5, dtype=complex)
            ref = arena.write(0, wave)
            assert ref.region == -1 and ref.inline is not None
            np.testing.assert_array_equal(ref.resolve(arena), wave)
            # An oversized waveform never fits, inline from the start.
            big = arena.write(0, np.ones(64, dtype=complex))
            assert big.region == -1
        finally:
            arena.close()

    def test_corruption_detected_by_checksum(self):
        arena = WaveformArena.create(1, 32)
        try:
            wave = np.ones(8, dtype=complex)
            ref = arena.write(0, wave, checksum=True)
            arena.view(0, ref.offset, ref.size)[2] += 1.0
            with pytest.raises(CaptureTransportError, match="checksum"):
                ref.resolve(arena)
        finally:
            arena.close()

    def test_attach_shares_bytes(self):
        arena = WaveformArena.create(1, 16)
        try:
            ref = arena.write(0, np.arange(4, dtype=complex),
                              checksum=True)
            other = WaveformArena.attach(arena.name, 1, 16)
            try:
                np.testing.assert_array_equal(
                    ref.resolve(other), np.arange(4, dtype=complex))
            finally:
                other.close()
        finally:
            arena.close()

    def test_bounds_checked(self):
        arena = WaveformArena.create(1, 8)
        try:
            with pytest.raises(ConfigurationError):
                arena.view(1, 0, 4)
            with pytest.raises(ConfigurationError):
                arena.view(0, 6, 4)
            with pytest.raises(ConfigurationError):
                arena.reset(5)
        finally:
            arena.close()

    def test_close_unlinks_no_leak(self):
        arena = WaveformArena.create(2, 64)
        name = arena.name
        assert name in find_leaked_arenas()
        arena.close()
        assert name not in find_leaked_arenas()
