"""k-way collision resolution end to end (§4.5) + receive-path contracts.

Covers the whole-stack generalization of this repo's receive path from
pairwise to k-way: the multi decoder's equivalence with the historical
pair decoder at k = 2 (Hypothesis-pinned, bit-exact), the online
:class:`~repro.core.ZigZagReceiver` resolving three packets from three
collisions through its collision-set matcher, the successes-only
``receive()`` contract, and the streaming ``three_senders_stream``
scenario agreeing with the offline Fig 5-9 testbed path.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ReceiverConfig, ZigZagReceiver
from repro.phy.channel import ChannelParams
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, synthesize
from repro.phy.preamble import default_preamble
from repro.phy.pulse import PulseShaper
from repro.receiver.frontend import StreamConfig
from repro.runner.builders import hidden_pair_scenario
from repro.utils.bits import random_bits
from repro.zigzag.decoder import ZigZagMultiDecoder, ZigZagPairDecoder

PRE = default_preamble(32)
SH = PulseShaper()
NAMES = ("A", "B", "C")
FREQS = {"A": 3e-3, "B": -2e-3, "C": 1e-3}


def three_way_captures(rng, frames, offset_rounds, snr_db=13.0):
    """One capture per round, all three senders colliding."""
    amp = np.sqrt(10 ** (snr_db / 10))
    captures = []
    for offsets in offset_rounds:
        txs = []
        for name, offset in zip(NAMES, offsets):
            params = ChannelParams(
                gain=amp * np.exp(1j * rng.uniform(0, 2 * np.pi)),
                freq_offset=FREQS[name],
                sampling_offset=float(rng.uniform(0, 1)),
                phase_noise_std=1e-3)
            txs.append(Transmission.from_symbols(
                frames[name].symbols, SH, params, offset, name))
        captures.append(synthesize(txs, 1.0, rng, leading=8, tail=30))
    return captures


def three_way_receiver(n_symbols):
    receiver = ZigZagReceiver(ReceiverConfig(
        preamble=PRE, shaper=SH, noise_power=1.0,
        expected_symbols=n_symbols, max_collision_packets=3,
        buffer_capacity=6))
    for i, name in enumerate(NAMES):
        receiver.clients.update(i + 1, FREQS[name])
    return receiver


class TestMultiEqualsPairAtK2:
    """The pair decoder is now a wrapper: k = 2 must be bit-identical."""

    @given(st.integers(0, 2**20))
    @settings(max_examples=10, deadline=None)
    def test_hidden_pair_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        config = StreamConfig(preamble=PRE, shaper=SH, noise_power=1.0)
        captures, frames, specs, placements = hidden_pair_scenario(
            rng, PRE, SH, snr_db=12.0, payload_bits=160)
        caps = [c.samples for c in captures]
        pair = ZigZagPairDecoder(config).decode(caps, specs, placements)
        multi = ZigZagMultiDecoder(config).decode(caps, specs, placements)
        for name in frames:
            assert np.array_equal(pair.results[name].bits,
                                  multi.results[name].bits)
            assert np.array_equal(pair.results[name].soft_symbols,
                                  multi.results[name].soft_symbols)
            assert pair.results[name].success \
                == multi.results[name].success
        assert multi.capture_soft is None  # extra copies never ran

    def test_pair_wrapper_keeps_copies_off_at_k3(self, rng, preamble,
                                                 shaper, stream_config):
        """Legacy call sites may hand the *pair* decoder three captures;
        its behavior must stay the historical forward+backward MRC."""
        frames = {n: Frame.make(random_bits(160, rng), src=i + 1,
                                preamble=preamble)
                  for i, n in enumerate(NAMES)}
        captures = three_way_captures(rng, frames,
                                      [(0, 80, 180), (60, 0, 140),
                                       (100, 40, 0)])
        from repro.phy.sync import Synchronizer
        from repro.zigzag.engine import PacketSpec, PlacementParams
        sync = Synchronizer(preamble, shaper, threshold=0.3)
        placements = []
        for ci, capture in enumerate(captures):
            for t in capture.transmissions:
                est = sync.acquire(capture.samples, t.symbol0,
                                   coarse_freq=FREQS[t.label],
                                   noise_power=1.0)
                placements.append(PlacementParams(
                    t.label, ci, t.symbol0 + est.sampling_offset, est))
        specs = {n: PacketSpec(n, frames[n].n_symbols) for n in NAMES}
        caps = [c.samples for c in captures]
        pair = ZigZagPairDecoder(stream_config).decode(
            caps, specs, placements)
        assert pair.capture_soft is None
        multi = ZigZagMultiDecoder(stream_config).decode(
            caps, specs, placements)
        assert multi.capture_soft  # k-copy MRC engaged for k = 3


class TestOnlineThreeWay:
    """Three mutually-hidden senders through the online AP (§4.5)."""

    def test_three_collisions_resolve_three_packets(self, rng):
        frames = {n: Frame.make(random_bits(200, rng), src=i + 1,
                                preamble=PRE)
                  for i, n in enumerate(NAMES)}
        receiver = three_way_receiver(frames["A"].n_symbols)
        captures = three_way_captures(
            rng, frames, [(0, 80, 180), (60, 0, 140), (100, 40, 0)])
        assert receiver.receive(captures[0].samples) == []
        assert receiver.receive(captures[1].samples) == []
        results = receiver.receive(captures[2].samples)
        recovered = sorted(r.header.src for r in results)
        assert recovered == [1, 2, 3]
        for result in results:
            name = NAMES[result.header.src - 1]
            assert result.ber_against(frames[name].body_bits) < 1e-3
        stats = receiver.stats
        assert stats.multiway_matches == 1
        assert stats.packets_multiway == 3
        assert stats.zigzag_matches == 1
        assert len(receiver.buffer) == 0  # the whole set was consumed

    def test_reordered_arrivals_still_match(self, rng):
        """Backoff jitter permutes arrival order between collisions; the
        peak-correspondence search must recover the identity mapping."""
        frames = {n: Frame.make(random_bits(200, rng), src=i + 1,
                                preamble=PRE)
                  for i, n in enumerate(NAMES)}
        receiver = three_way_receiver(frames["A"].n_symbols)
        # A,B,C / C,A,B / B,C,A arrival orders.
        captures = three_way_captures(
            rng, frames, [(0, 80, 180), (100, 180, 0), (180, 0, 100)])
        decoded = []
        for capture in captures:
            decoded.extend(receiver.receive(capture.samples))
        assert sorted(r.header.src for r in decoded) == [1, 2, 3]

    def test_degenerate_identical_offsets_not_consumed(self, rng):
        """Same arrival pattern every time is the §4.5 failure case: the
        receiver must keep storing rather than attempt the degenerate
        set."""
        frames = {n: Frame.make(random_bits(200, rng), src=i + 1,
                                preamble=PRE)
                  for i, n in enumerate(NAMES)}
        receiver = three_way_receiver(frames["A"].n_symbols)
        captures = three_way_captures(
            rng, frames, [(0, 80, 180)] * 3)
        for capture in captures:
            assert receiver.receive(capture.samples) == []
        assert receiver.stats.multiway_matches == 0
        assert len(receiver.buffer) == 3


class TestReceiveContract:
    """receive() returns successes only (regression for the failed-
    DecodeResult leak on the single-peak standard-decode-failure path)."""

    def test_single_peak_decode_failure_returns_empty(self, rng):
        """A lone detected preamble whose standard decode fails used to
        leak the failed DecodeResult (with its garbage bits) into the
        return list; the contract is successes only."""
        frame = Frame.make(random_bits(200, rng), src=1, preamble=PRE)
        receiver = ZigZagReceiver(ReceiverConfig(
            preamble=PRE, shaper=SH, noise_power=1.0,
            expected_symbols=frame.n_symbols))
        receiver.clients.update(1, 2e-3)
        # Drown the packet: SNR far below decodability, but the preamble
        # correlation still spikes at high beta... use a truncated body so
        # the CRC cannot pass while the preamble stays detectable.
        params = ChannelParams(gain=3.0 + 0j, freq_offset=2e-3,
                               sampling_offset=0.3)
        tx = Transmission.from_symbols(frame.symbols, SH, params, 0, "x")
        capture = synthesize([tx], 1.0, rng, leading=8, tail=30)
        cut = capture.samples[:len(capture.samples) // 2]
        results = receiver.receive(cut)
        assert results == [] or all(r.success for r in results)

    def test_match_counters_distinguish_reject_from_unscoreable(
            self, rng):
        """match_attempts counts scored records; match_rejects_threshold
        counts the ones that scored below the bar — so 'scanned but
        nothing cleared the threshold' is observable."""
        frames1 = {n: Frame.make(random_bits(200, rng), src=i + 1,
                                 preamble=PRE)
                   for i, n in enumerate(("s1", "s2"))}
        frames2 = {n: Frame.make(random_bits(200, rng), src=i + 3,
                                 preamble=PRE)
                   for i, n in enumerate(("s3", "s4"))}
        receiver = ZigZagReceiver(ReceiverConfig(
            preamble=PRE, shaper=SH, noise_power=1.0,
            expected_symbols=frames1["s1"].n_symbols))
        for src, freq in ((1, 3e-3), (2, -2e-3), (3, 1e-3), (4, -1e-3)):
            receiver.clients.update(src, freq)

        def collide(frames, offsets, freqs):
            txs = []
            for (name, frame), offset in zip(frames.items(), offsets):
                params = ChannelParams(
                    gain=np.sqrt(10 ** 1.3)
                    * np.exp(1j * rng.uniform(0, 2 * np.pi)),
                    freq_offset=freqs[name],
                    sampling_offset=float(rng.uniform(0, 1)),
                    phase_noise_std=1e-3)
                txs.append(Transmission.from_symbols(
                    frame.symbols, SH, params, offset, name))
            return synthesize(txs, 1.0, rng, leading=8, tail=30)

        # Two collisions of *different* packet pairs: the second scores
        # the first but must reject it below threshold.
        receiver.receive(collide(frames1, (0, 160),
                                 {"s1": 3e-3, "s2": -2e-3}).samples)
        receiver.receive(collide(frames2, (0, 60),
                                 {"s3": 1e-3, "s4": -1e-3}).samples)
        assert receiver.stats.match_attempts >= 1
        assert receiver.stats.match_rejects_threshold \
            == receiver.stats.match_attempts
        assert receiver.stats.zigzag_matches == 0


class TestStreamMatchesOffline:
    """Acceptance: the online three_senders_stream path agrees with the
    offline Fig 5-9 testbed loop on collision-airtime throughput."""

    def test_three_senders_stream_matches_fig_5_9(self):
        from repro.runner.scenarios import TrialContext, get_scenario
        from repro.runner.spec import ScenarioSpec
        from repro.testbed.experiment import run_three_sender_experiment

        spec = ScenarioSpec(kind="three_senders_stream", design="zigzag",
                            payload_bits=200, n_packets=3,
                            params={"n_senders": 3, "snr_db": 13.0})
        fn = get_scenario("three_senders_stream")
        online = []
        for index in range(4):
            metrics = fn(spec, TrialContext.for_trial(0, index)).metrics
            online.append(np.mean(
                [metrics[f"collision_throughput_{n}"] for n in NAMES]))
            assert metrics["fairness_ratio"] < 4.0
        offline = []
        for seed in range(4):
            tput = run_three_sender_experiment(
                snr_db=13.0, n_packets=3, payload_bits=200, seed=seed)
            offline.append(np.mean(list(tput.values())))
        online_mean = float(np.mean(online))
        offline_mean = float(np.mean(offline))
        # Same physics, same normalization basis (delivered packets per
        # collision airtime); the online loop adds real matching and MAC
        # feedback, so agreement is within Monte-Carlo noise, not exact.
        assert online_mean == pytest.approx(offline_mean, abs=0.12), (
            f"online {online_mean:.3f} vs offline {offline_mean:.3f}")
        # And the online path must genuinely resolve k-way sets.
        assert online_mean > 0.1
