"""AWGN and SNR bookkeeping tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.noise import (
    awgn,
    db_to_linear,
    ebn0_db_to_snr_db,
    linear_to_db,
    noise_power_for_snr_db,
    signal_power,
    snr_db,
    snr_db_to_ebn0_db,
)


class TestConversions:
    def test_db_roundtrip(self):
        assert linear_to_db(db_to_linear(7.3)) == pytest.approx(7.3)

    def test_known_values(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert db_to_linear(3.0) == pytest.approx(1.995, rel=1e-3)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            linear_to_db(0.0)

    def test_ebn0_snr_inverse(self):
        for k in (1, 2, 4, 6):
            assert snr_db_to_ebn0_db(ebn0_db_to_snr_db(5.0, k), k) \
                == pytest.approx(5.0)

    def test_bpsk_ebn0_equals_snr(self):
        assert ebn0_db_to_snr_db(8.0, 1) == pytest.approx(8.0)


class TestAwgn:
    def test_power_matches_request(self, rng):
        noise = awgn(200_000, 2.5, rng)
        assert signal_power(noise) == pytest.approx(2.5, rel=0.02)

    def test_circular_symmetry(self, rng):
        noise = awgn(100_000, 1.0, rng)
        assert np.mean(noise.real ** 2) == pytest.approx(0.5, rel=0.05)
        assert np.mean(noise.imag ** 2) == pytest.approx(0.5, rel=0.05)
        assert abs(np.mean(noise)) < 0.01

    def test_zero_power(self, rng):
        noise = awgn(10, 0.0, rng)
        assert np.all(noise == 0)

    def test_negative_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            awgn(10, -1.0, rng)


class TestSnr:
    def test_empirical_snr(self, rng):
        signal = 3.0 * np.exp(1j * rng.uniform(0, 2 * np.pi, 50_000))
        noise = awgn(50_000, 1.0, rng)
        assert snr_db(signal, noise) == pytest.approx(
            linear_to_db(9.0), abs=0.1)

    def test_noise_power_for_snr(self):
        assert noise_power_for_snr_db(10.0, signal_pwr=2.0) \
            == pytest.approx(0.2)
        with pytest.raises(ConfigurationError):
            noise_power_for_snr_db(10.0, signal_pwr=0.0)
