"""Golden numerical-equivalence tests for the vectorized DSP hot paths.

PR "vectorize the symbol-rate hot paths" rewrote PhaseTracker,
MatchedSampler, the convolutional encode/Viterbi decode, the
Mueller–Müller tracker, and Reencoder.image for throughput. These tests
pin the contract that made that safe: on identical seeded inputs the
optimized kernels produce outputs **identical** to the pre-optimization
implementations — exact for the integer paths (encode, Viterbi decode),
within 1e-12 for the float paths.

The reference implementations are kept verbatim in
``repro.perf.reference`` (a single source of truth shared with the perf
harness, which times them as the "before" baseline); the module-level
``_reference_*`` aliases bind them for the assertions here.
"""

import numpy as np
import pytest

from repro.perf import reference
from repro.phy.coding.convolutional import ConvolutionalCode
from repro.phy.constellation import BPSK, QAM16, QPSK
from repro.phy.estimation import ChannelEstimate
from repro.phy.pulse import MatchedSampler, PulseShaper
from repro.phy.tracking import MuellerMullerTracker, PhaseTracker
from repro.utils.bits import random_bits

_reference_phase_tracker_process = reference.phase_tracker_process
_reference_matched_sampler_sample = reference.matched_sampler_sample
_reference_convolutional_encode = reference.convolutional_encode
_reference_convolutional_decode_soft = reference.convolutional_decode_soft
_reference_mueller_muller_process = reference.mueller_muller_process
_reference_reencoder_image = reference.reencoder_image

TOL = 1e-12


def _noisy_symbols(constellation, n, rng, freq=1.5e-3, phase0=0.25,
                   noise=0.05):
    bits = rng.integers(0, 2, n * constellation.bits_per_symbol)
    clean = constellation.modulate(bits)
    y = clean * np.exp(1j * (phase0 + freq * np.arange(n)))
    y = y + noise * (rng.normal(size=n) + 1j * rng.normal(size=n))
    return clean, y


class TestPhaseTrackerEquivalence:
    @pytest.mark.parametrize("constellation", [BPSK, QPSK, QAM16],
                             ids=["bpsk", "qpsk", "qam16"])
    def test_decision_directed(self, constellation, rng):
        _, y = _noisy_symbols(constellation, 400, rng)
        fast = PhaseTracker()
        ref = PhaseTracker()
        f_corr, f_dec, f_ph = fast.process(y, constellation)
        r_corr, r_dec, r_ph = _reference_phase_tracker_process(
            ref, y, constellation)
        np.testing.assert_allclose(f_corr, r_corr, atol=TOL, rtol=0)
        np.testing.assert_allclose(f_dec, r_dec, atol=TOL, rtol=0)
        np.testing.assert_allclose(f_ph, r_ph, atol=TOL, rtol=0)
        assert fast.phase == pytest.approx(ref.phase, abs=TOL)
        assert fast.freq == pytest.approx(ref.freq, abs=TOL)
        assert fast._last_error == pytest.approx(ref._last_error, abs=TOL)

    def test_decision_directed_conjugate_constellation(self, rng):
        """The conjugated (backward-decoding) QPSK takes the generic
        slicer path; it must agree with the reference too."""
        conj_qpsk = QPSK.conjugate()
        _, y = _noisy_symbols(conj_qpsk, 300, rng)
        f_out = PhaseTracker().process(y, conj_qpsk)
        r_out = _reference_phase_tracker_process(PhaseTracker(), y,
                                                 conj_qpsk)
        for f, r in zip(f_out, r_out):
            np.testing.assert_allclose(f, r, atol=TOL, rtol=0)

    def test_data_aided(self, rng):
        clean, y = _noisy_symbols(BPSK, 256, rng, phase0=1.1)
        fast = PhaseTracker()
        ref = PhaseTracker()
        f_out = fast.process(y, BPSK, known=clean)
        r_out = _reference_phase_tracker_process(ref, y, BPSK, known=clean)
        for f, r in zip(f_out, r_out):
            np.testing.assert_allclose(f, r, atol=TOL, rtol=0)
        assert fast.phase == pytest.approx(ref.phase, abs=TOL)
        assert fast.freq == pytest.approx(ref.freq, abs=TOL)

    @pytest.mark.parametrize("n", [64, 400], ids=["scalar", "speculative"])
    def test_decision_directed_with_zero_samples(self, rng, n):
        """Exact-zero samples (a sampler window wholly inside capture-edge
        padding) must reproduce the reference's IEEE zero-sign error
        semantics on both the scalar and the speculate-verify BPSK paths."""
        _, y = _noisy_symbols(BPSK, n, rng, phase0=2.5)
        y[n // 4] = 0
        y[n // 2] = 0
        fast = PhaseTracker()
        ref = PhaseTracker()
        f_out = fast.process(y, BPSK)
        r_out = _reference_phase_tracker_process(ref, y, BPSK)
        for f, r in zip(f_out, r_out):
            np.testing.assert_allclose(f, r, atol=TOL, rtol=0)
        assert fast.phase == pytest.approx(ref.phase, abs=TOL)

    def test_data_aided_with_zero_samples(self, rng):
        """Exact-zero *received* samples in data-aided mode must keep the
        reference's IEEE zero-sign error semantics too."""
        clean, y = _noisy_symbols(BPSK, 64, rng, phase0=1.1)
        y[20] = 0
        y[45] = 0
        fast = PhaseTracker()
        ref = PhaseTracker()
        f_out = fast.process(y, BPSK, known=clean)
        r_out = _reference_phase_tracker_process(ref, y, BPSK, known=clean)
        for f, r in zip(f_out, r_out):
            np.testing.assert_allclose(f, r, atol=TOL, rtol=0)
        assert fast.phase == pytest.approx(ref.phase, abs=TOL)

    def test_data_aided_with_zero_reference_symbols(self, rng):
        """Zeros in `known` must coast (no update), exactly as before."""
        clean, y = _noisy_symbols(BPSK, 64, rng)
        known = clean.copy()
        known[10:20] = 0
        f_out = PhaseTracker().process(y, BPSK, known=known)
        r_out = _reference_phase_tracker_process(PhaseTracker(), y, BPSK,
                                                 known=known)
        for f, r in zip(f_out, r_out):
            np.testing.assert_allclose(f, r, atol=TOL, rtol=0)

    def test_disabled_closed_form(self, rng):
        _, y = _noisy_symbols(BPSK, 200, rng)
        fast = PhaseTracker(enabled=False, phase=0.4, freq=2e-3)
        ref = PhaseTracker(enabled=False, phase=0.4, freq=2e-3)
        f_out = fast.process(y, BPSK)
        r_out = _reference_phase_tracker_process(ref, y, BPSK)
        for f, r in zip(f_out, r_out):
            np.testing.assert_allclose(f, r, atol=1e-10, rtol=0)
        assert fast.phase == pytest.approx(ref.phase, abs=1e-10)

    def test_chunked_processing_matches_reference_chunked(self, rng):
        _, y = _noisy_symbols(BPSK, 300, rng)
        fast = PhaseTracker()
        ref = PhaseTracker()
        for a, b in ((0, 90), (90, 200), (200, 300)):
            f_corr, _, _ = fast.process(y[a:b], BPSK)
            r_corr, _, _ = _reference_phase_tracker_process(
                ref, y[a:b], BPSK)
            np.testing.assert_allclose(f_corr, r_corr, atol=TOL, rtol=0)


class TestMatchedSamplerEquivalence:
    @pytest.mark.parametrize("start_shift", [0.0, 0.37, -3.6, 11.25])
    def test_fractional_starts_and_padding(self, shaper, rng, start_shift):
        """Interior starts, negative starts (left padding) and starts
        running past the buffer (right padding) all agree."""
        d = BPSK.modulate(rng.integers(0, 2, 200))
        wave = shaper.shape(d)
        sampler = MatchedSampler(shaper)
        start = shaper.delay + start_shift
        count = 210  # deliberately overruns -> right padding
        fast = sampler.sample(wave, start, count)
        ref = _reference_matched_sampler_sample(sampler, wave, start, count)
        np.testing.assert_allclose(fast, ref, atol=TOL, rtol=0)

    def test_empty_and_zero_count(self, shaper):
        sampler = MatchedSampler(shaper)
        assert sampler.sample(np.zeros(50, complex), 3.0, 0).size == 0


class TestConvolutionalEquivalence:
    def test_encode_exact(self, rng):
        code = ConvolutionalCode()
        for n in (1, 7, 64, 501):
            bits = random_bits(n, rng)
            for terminate in (True, False):
                fast = code.encode(bits, terminate=terminate)
                ref = _reference_convolutional_encode(
                    code, bits, terminate=terminate)
                assert np.array_equal(fast, ref)

    def test_decode_soft_exact(self, rng):
        code = ConvolutionalCode()
        bits = random_bits(400, rng)
        coded = code.encode(bits)
        soft = (1.0 - 2.0 * coded.astype(float)
                + rng.normal(scale=0.45, size=coded.size))
        for terminated in (True, False):
            fast = code.decode_soft(soft, terminated=terminated)
            ref = _reference_convolutional_decode_soft(
                code, soft, terminated=terminated)
            assert np.array_equal(fast, ref)

    def test_decode_hard_exact(self, rng):
        code = ConvolutionalCode()
        bits = random_bits(120, rng)
        coded = code.encode(bits)
        corrupted = coded.copy()
        corrupted[::17] ^= 1
        fast = code.decode_hard(corrupted)
        ref = _reference_convolutional_decode_soft(
            code, 1.0 - 2.0 * corrupted.astype(float))
        assert np.array_equal(fast, ref)

    def test_nonstandard_code_exact(self, rng):
        """Equivalence holds for other (K, generators) too, including a
        rate-1/3 code."""
        code = ConvolutionalCode(generators=(0o5, 0o7, 0o6),
                                 constraint_length=3)
        bits = random_bits(97, rng)
        assert np.array_equal(
            code.encode(bits),
            _reference_convolutional_encode(code, bits))
        soft = (1.0 - 2.0 * code.encode(bits).astype(float)
                + rng.normal(scale=0.3, size=3 * (97 + 2)))
        assert np.array_equal(
            code.decode_soft(soft),
            _reference_convolutional_decode_soft(code, soft))


class TestMuellerMullerEquivalence:
    def test_process_matches_reference(self, rng):
        _, y = _noisy_symbols(BPSK, 500, rng)
        decisions = BPSK.slice_symbols(y)
        fast = MuellerMullerTracker()
        ref = MuellerMullerTracker()
        f_est = fast.process(y, decisions)
        r_est = _reference_mueller_muller_process(ref, y, decisions)
        assert f_est == pytest.approx(r_est, abs=TOL)
        assert fast._prev_y == ref._prev_y
        assert fast._prev_d == ref._prev_d

    def test_process_continues_from_update_state(self, rng):
        _, y = _noisy_symbols(BPSK, 64, rng)
        d = BPSK.slice_symbols(y)
        fast = MuellerMullerTracker()
        ref = MuellerMullerTracker()
        fast.update(complex(y[0]), complex(d[0]))
        ref.update(complex(y[0]), complex(d[0]))
        f_est = fast.process(y[1:], d[1:])
        r_est = _reference_mueller_muller_process(ref, y[1:], d[1:])
        assert f_est == pytest.approx(r_est, abs=TOL)


class TestReencoderEquivalence:
    def _make(self, shaper, with_isi=False):
        from repro.phy.isi import IsiFilter
        from repro.zigzag.reencode import Reencoder
        isi = None
        if with_isi:
            isi = IsiFilter(np.array([0.05 + 0.02j, 1.0, -0.08j]))
        estimate = ChannelEstimate(gain=1.3 * np.exp(0.7j),
                                   freq_offset=3e-4,
                                   sampling_offset=0.41, snr_db=12.0)
        return (Reencoder(shaper=shaper, estimate=estimate, start=37.41,
                          symbol_isi=isi),
                Reencoder(shaper=shaper, estimate=estimate, start=37.41,
                          symbol_isi=isi))

    @staticmethod
    def _placed(segment, base, origin, length):
        """Embed (segment, base) into a buffer anchored at *origin* — the
        representation subtraction actually consumes, invariant to how an
        implementation pads its segment."""
        out = np.zeros(length, dtype=complex)
        out[base - origin: base - origin + segment.size] = segment
        return out

    @pytest.mark.parametrize("with_isi", [False, True], ids=["flat", "isi"])
    def test_image_matches_reference(self, shaper, rng, with_isi):
        """Identical placed waveforms. (The optimized segment legitimately
        omits the reference layout's two identically-zero edge samples, so
        the comparison is base-aligned rather than raw.)"""
        fast_enc, ref_enc = self._make(shaper, with_isi)
        symbols = BPSK.modulate(rng.integers(0, 2, 96))
        for i0 in (0, 32, 64):
            chunk = symbols[i0:i0 + 32]
            f_seg, f_base = fast_enc.image(chunk, i0)
            r_seg, r_base = _reference_reencoder_image(ref_enc, chunk, i0)
            origin = min(f_base, r_base)
            length = max(f_base + f_seg.size, r_base + r_seg.size) - origin
            np.testing.assert_allclose(
                self._placed(f_seg, f_base, origin, length),
                self._placed(r_seg, r_base, origin, length),
                atol=TOL, rtol=0)

    def test_superposition_against_reference(self, shaper, rng):
        """Chunkwise images summed must equal the reference whole-packet
        image — the linearity property incremental subtraction needs."""
        fast_enc, ref_enc = self._make(shaper)
        symbols = BPSK.modulate(rng.integers(0, 2, 64))
        whole_seg, whole_base = _reference_reencoder_image(
            ref_enc, symbols, 0)
        total = np.zeros(whole_seg.size + 64, dtype=complex)
        for i0, i1 in ((0, 21), (21, 41), (41, 64)):
            seg, base = fast_enc.image(symbols[i0:i1], i0)
            lo = base - whole_base
            total[lo:lo + seg.size] += seg
        np.testing.assert_allclose(total[:whole_seg.size], whole_seg,
                                   atol=1e-10, rtol=0)
        np.testing.assert_allclose(total[whole_seg.size:], 0,
                                   atol=1e-10, rtol=0)


class TestEndToEndGolden:
    def test_hidden_pair_decode_bits_identical(self):
        """A full seeded hidden-pair ZigZag decode recovers bit-identical
        frames with the optimized kernels and with every pre-PR reference
        implementation patched in."""
        from repro.perf.bench import _decode_outcome_fingerprint

        fast = _decode_outcome_fingerprint(seed=424242, payload_bits=240)
        with reference.use_reference_kernels():
            ref = _decode_outcome_fingerprint(seed=424242, payload_bits=240)
        assert fast.keys() == ref.keys()
        for name in fast:
            assert fast[name]["success"] == ref[name]["success"]
            assert np.array_equal(fast[name]["bits"], ref[name]["bits"]), \
                f"decoded bits diverged for packet {name}"