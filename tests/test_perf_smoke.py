"""Perf-harness smoke: both execution modes produce complete entries.

``make perfbench-smoke`` (CI) runs the whole suite at tiny sizes; these
tests pin the report *schema* at even tinier sizes so harness rot is a
tier-1 failure instead of a silent CI artifact change. The end-to-end
benches are parameterized over the two execution modes — ``loop``
(per-trial scalar decode) and ``batched`` (trial-axis engine) — and
each entry must record its speedup field plus enough context
(trial counts, payload size, lockstep/fallback split) to interpret the
number later.
"""

import numpy as np
import pytest

from repro.perf.bench import (
    _bench_batched_end_to_end,
    _bench_end_to_end,
    _bench_multicell_coupled,
    _build_kernel_benches,
)


@pytest.fixture(scope="module")
def entries():
    return {
        "loop": _bench_end_to_end(2, payload_bits=64, repeats=1),
        "batched": _bench_batched_end_to_end(4, payload_bits=64,
                                             repeats=1),
    }


@pytest.mark.parametrize("mode", ["loop", "batched"])
def test_mode_entry_records_speedup(entries, mode):
    entry = entries[mode]
    assert entry["scenario"] == "hidden_pair_decode"
    assert entry["mode"] == mode
    assert np.isfinite(entry["speedup"]) and entry["speedup"] > 0


def test_loop_entry_schema(entries):
    entry = entries["loop"]
    assert entry["n_trials"] == 2
    for key in ("trials_per_sec_before", "trials_per_sec_after",
                "seconds_before", "seconds_after"):
        assert entry[key] > 0


def test_batched_entry_schema(entries):
    entry = entries["batched"]
    assert entry["batch_size"] == 4
    assert entry["lockstep_trials"] + entry["fallback_trials"] == 4
    for key in ("trials_per_sec_loop", "trials_per_sec_batched",
                "seconds_loop", "seconds_batched"):
        assert entry[key] > 0
    # The recorded speedup is the ratio of the recorded throughputs.
    assert entry["speedup"] == pytest.approx(
        entry["trials_per_sec_batched"] / entry["trials_per_sec_loop"])


def test_multicell_coupled_entry_schema():
    entry = _bench_multicell_coupled(True, repeats=1)
    assert entry["scenario"] == "city_multicell"
    assert entry["workers"] == entry["n_cells"] > 1
    assert entry["cpu_count"] >= 1
    for key in ("seconds_sequential", "seconds_parallel",
                "trials_per_sec_sequential", "trials_per_sec_parallel",
                "speedup"):
        assert np.isfinite(entry[key]) and entry[key] > 0
    # The parallel coordinator must reproduce the sequential report
    # bit-for-bit without falling back to in-process stepping.
    assert entry["identical"] and not entry["degraded"]


def test_kernel_bench_table_includes_batched_kernels():
    names = {bench.name for bench in _build_kernel_benches(512)}
    assert {"batched_matched_sampler", "batched_phase_tracker",
            "batched_viterbi"} <= names
