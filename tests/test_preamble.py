"""Preamble (m-sequence) tests: autocorrelation and correlation API."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.preamble import Preamble, default_preamble, lfsr_sequence


class TestLfsr:
    def test_maximal_period(self):
        # Order-7 m-sequence repeats with period 2^7 - 1 = 127.
        seq = lfsr_sequence(254, order=7)
        assert np.array_equal(seq[:127], seq[127:254])
        assert not np.array_equal(seq[:63], seq[63:126])

    def test_balanced(self):
        seq = lfsr_sequence(127, order=7)
        assert abs(int(seq.sum()) - 64) <= 1

    def test_zero_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            lfsr_sequence(10, order=7, seed_state=0)

    def test_unsupported_order(self):
        with pytest.raises(ConfigurationError):
            lfsr_sequence(10, order=3)


class TestPreamble:
    def test_symbols_are_plus_minus_one(self):
        p = default_preamble(32)
        assert set(np.unique(p.symbols.real)) == {-1.0, 1.0}
        assert np.all(p.symbols.imag == 0)

    def test_energy(self):
        p = default_preamble(32)
        assert p.energy == pytest.approx(32.0)

    def test_autocorrelation_peak_dominates(self):
        p = default_preamble(32)
        signal = np.concatenate([np.zeros(10, complex), p.symbols,
                                 np.zeros(10, complex)])
        values = [abs(p.correlate_at(signal, pos)) for pos in range(20)]
        assert np.argmax(values) == 10
        side = max(v for i, v in enumerate(values) if abs(i - 10) > 1)
        assert values[10] > 2.5 * side

    def test_correlate_with_freq_compensation(self):
        p = default_preamble(32)
        f = 3e-3
        k = np.arange(32)
        received = p.symbols * np.exp(2j * np.pi * f * k)
        uncompensated = abs(p.correlate_at(received, 0))
        compensated = abs(p.correlate_at(received, 0,
                                         freq_offset_cycles_per_sample=f))
        assert compensated == pytest.approx(32.0, rel=1e-6)
        assert compensated > uncompensated

    def test_too_short_signal_rejected(self):
        p = default_preamble(32)
        with pytest.raises(ConfigurationError):
            p.correlate_at(np.zeros(10, complex), 0)

    def test_empty_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            Preamble(np.array([], dtype=np.uint8))
