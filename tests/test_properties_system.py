"""Cross-module property tests on system-level invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.channel import Channel, ChannelParams
from repro.phy.frame import Frame, scramble_bits, descramble_soft_bpsk
from repro.phy.impairments import (
    AdcQuantizer,
    BurstNoise,
    CwTone,
    DcOffset,
    ImpairmentPipeline,
    IqImbalance,
    RayleighFading,
    RicianFading,
    SfoDrift,
    SoftClipper,
    available_impairments,
    make_impairment,
)
from repro.phy.medium import Transmission, synthesize
from repro.phy.preamble import default_preamble
from repro.phy.pulse import MatchedSampler, PulseShaper
from repro.utils.bits import random_bits

PRE = default_preamble(32)
SH = PulseShaper()


class TestScramblerProperties:
    @given(st.integers(0, 2**20), st.integers(8, 300),
           st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_involution(self, seed, n, offset):
        bits = random_bits(n, np.random.default_rng(seed))
        once = scramble_bits(bits, offset)
        twice = scramble_bits(once, offset)
        assert np.array_equal(twice, bits)

    @given(st.integers(0, 2**20), st.integers(8, 200))
    @settings(max_examples=25, deadline=None)
    def test_soft_descramble_matches_bit_descramble(self, seed, n):
        """Descrambling BPSK soft values then slicing equals slicing then
        descrambling bits — the §6(a) soft path is consistent."""
        rng = np.random.default_rng(seed)
        bits = random_bits(n, rng)
        scrambled = scramble_bits(bits)
        soft_on_air = (2.0 * scrambled.astype(float) - 1.0).astype(complex)
        soft_clean = descramble_soft_bpsk(soft_on_air)
        sliced = (np.real(soft_clean) > 0).astype(np.uint8)
        assert np.array_equal(sliced, bits)


class TestMediumProperties:
    @given(st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_superposition_linearity(self, seed):
        """The air is linear: a two-packet capture equals the sum of the
        single-packet captures (same channels, no noise)."""
        rng = np.random.default_rng(seed)
        frames = [Frame.make(random_bits(64, rng), src=i + 1,
                             preamble=PRE) for i in range(2)]
        params = [ChannelParams(
            gain=(1.0 + rng.uniform()) * np.exp(1j * rng.uniform(0, 6)),
            freq_offset=float(rng.uniform(-4e-3, 4e-3)),
            sampling_offset=float(rng.uniform(0, 1)))
            for _ in range(2)]
        offsets = [0, int(rng.integers(10, 120))]
        txs = [Transmission.from_symbols(f.symbols, SH, p, o, str(i))
               for i, (f, p, o) in enumerate(zip(frames, params, offsets))]
        both = synthesize(txs, 0.0, np.random.default_rng(1),
                          leading=4, tail=8)
        assert np.allclose(
            both.samples,
            both.clean_components[0] + both.clean_components[1],
            atol=1e-12)

    @given(st.integers(0, 2**16), st.floats(0.0, 0.99))
    @settings(max_examples=15, deadline=None)
    def test_matched_filter_recovers_any_fractional_timing(self, seed, mu):
        """TX shaping -> fractional delay -> matched sampling is near-
        transparent for every sub-sample offset."""
        rng = np.random.default_rng(seed)
        frame = Frame.make(random_bits(96, rng), preamble=PRE)
        params = ChannelParams(gain=1.0, sampling_offset=mu)
        wave = Channel(params, rng).apply(SH.shape(frame.symbols))
        out = MatchedSampler(SH).sample(wave, SH.delay + mu,
                                        frame.n_symbols)
        core = slice(4, -4)
        assert np.max(np.abs(out[core] - frame.symbols[core])) < 0.05


class TestChannelProperties:
    @given(st.integers(0, 2**16), st.floats(-4e-3, 4e-3),
           st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_reconstruct_deterministic(self, seed, freq, start):
        """reconstruct() must be exactly repeatable (no hidden RNG) — the
        property ZigZag's image subtraction depends on."""
        params = ChannelParams(gain=1.3 * np.exp(1j * 0.2),
                               freq_offset=freq, sampling_offset=0.37)
        x = np.exp(1j * np.linspace(0, 5, 200))
        a = Channel(params, np.random.default_rng(seed)).reconstruct(
            x, start)
        b = Channel(params, np.random.default_rng(seed + 1)).reconstruct(
            x, start)
        assert np.array_equal(a, b)

    @given(st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_channel_linearity(self, seed):
        rng = np.random.default_rng(seed)
        params = ChannelParams(gain=2.0 * np.exp(1j * 0.5),
                               freq_offset=1e-3, sampling_offset=0.4)
        ch = Channel(params, rng)
        a = rng.standard_normal(80) + 1j * rng.standard_normal(80)
        b = rng.standard_normal(80) + 1j * rng.standard_normal(80)
        combined = ch.reconstruct(a + 3.0 * b, 10)
        separate = ch.reconstruct(a, 10) + 3.0 * ch.reconstruct(b, 10)
        assert np.allclose(combined, separate, atol=1e-10)


# One representative (randomly parameterized) stage per impairment kind,
# drawn from a hypothesis-provided seed so every family's parameter space
# gets sampled. Kept in sync with the registry by test_every_kind_sampled.
def _sample_stage(kind: str, rng: np.random.Generator):
    return make_impairment({
        "rayleigh": lambda: {"kind": kind,
                             "coherence_samples": int(rng.integers(1, 800)),
                             "block": bool(rng.integers(2))},
        "rician": lambda: {"kind": kind,
                           "k_factor_db": float(rng.uniform(-5, 20)),
                           "coherence_samples": int(rng.integers(1, 800)),
                           "block": bool(rng.integers(2))},
        "sfo_drift": lambda: {"kind": kind,
                              "drift_ppm": float(rng.uniform(-900, 900))},
        "clip": lambda: {"kind": kind,
                         "saturation": float(rng.uniform(0.2, 5.0)),
                         "smoothness": float(rng.uniform(0.5, 6.0))},
        "quantize": lambda: {"kind": kind,
                             "enob": float(rng.uniform(1.0, 12.0)),
                             "full_scale": float(rng.uniform(0.5, 8.0))},
        "iq_imbalance": lambda: {"kind": kind,
                                 "amplitude_db": float(rng.uniform(-3, 3)),
                                 "phase_deg": float(rng.uniform(-20, 20))},
        "dc_offset": lambda: {"kind": kind,
                              "dc_i": float(rng.uniform(-1, 1)),
                              "dc_q": float(rng.uniform(-1, 1))},
        "cw_tone": lambda: {"kind": kind,
                            "power_db": float(rng.uniform(-20, 10)),
                            "freq": float(rng.uniform(-0.45, 0.45))},
        "burst_noise": lambda: {"kind": kind,
                                "power_db": float(rng.uniform(-10, 10)),
                                "duty_cycle": float(rng.uniform(0, 1)),
                                "burst_samples": int(rng.integers(1, 500))},
    }[kind]())


ALL_KINDS = sorted(available_impairments())

IDENTITY_STAGES = [
    SfoDrift(drift_ppm=0.0),
    SoftClipper(),
    AdcQuantizer(),
    IqImbalance(),
    DcOffset(),
    CwTone(power_db=-np.inf),
    BurstNoise(duty_cycle=0.0),
]


class TestImpairmentProperties:
    def test_every_kind_sampled(self):
        """_sample_stage covers the whole registry — a new impairment
        without property coverage fails here."""
        rng = np.random.default_rng(0)
        for kind in ALL_KINDS:
            assert _sample_stage(kind, rng).kind == kind

    @given(st.sampled_from(ALL_KINDS), st.integers(0, 2**16),
           st.integers(0, 3000), st.integers(1, 1500))
    @settings(max_examples=60, deadline=None)
    def test_seed_determinism_and_length(self, kind, seed, start, n):
        """Same stage + same RNG seed -> bit-identical output, and every
        stage preserves the input length (alignment is sacred: ZigZag's
        chunk bookkeeping counts samples)."""
        stage = _sample_stage(kind, np.random.default_rng(seed))
        x = np.exp(1j * np.linspace(0.0, 11.0, n))
        a = stage.apply(x, np.random.default_rng(seed + 1), start)
        b = stage.apply(x, np.random.default_rng(seed + 1), start)
        assert a.size == x.size
        assert np.array_equal(a, b)

    @given(st.sampled_from([s for s in IDENTITY_STAGES]),
           st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_identity_config_is_passthrough(self, stage, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(256) + 1j * rng.standard_normal(256)
        assert stage.is_identity
        assert np.array_equal(stage.apply(x, rng), x)

    @given(st.integers(0, 2**16), st.floats(0.3, 4.0))
    @settings(max_examples=25, deadline=None)
    def test_clipper_output_power_bounded(self, seed, saturation):
        rng = np.random.default_rng(seed)
        x = 3.0 * (rng.standard_normal(400) + 1j * rng.standard_normal(400))
        out = SoftClipper(saturation=saturation).apply(x, rng)
        assert np.max(np.abs(out)) <= saturation + 1e-9

    @given(st.integers(0, 2**16), st.floats(1.0, 10.0),
           st.floats(0.5, 4.0))
    @settings(max_examples=25, deadline=None)
    def test_quantizer_output_bounded_by_full_scale(self, seed, enob, fs):
        rng = np.random.default_rng(seed)
        x = 10.0 * (rng.standard_normal(300)
                    + 1j * rng.standard_normal(300))
        out = AdcQuantizer(enob=enob, full_scale=fs).apply(x, rng)
        assert np.max(np.abs(out.real)) <= fs + 1e-9
        assert np.max(np.abs(out.imag)) <= fs + 1e-9

    @given(st.integers(0, 2**16), st.integers(8, 128),
           st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_fading_unit_gain_normalization(self, seed, coherence, block):
        """Rayleigh and Rician are specified unit-average-power: over many
        coherence intervals the empirical power converges to 1."""
        n = coherence * 256
        ones = np.ones(n)
        for stage in (RayleighFading(coherence, block=block),
                      RicianFading(6.0, coherence, block=block)):
            out = stage.apply(ones, np.random.default_rng(seed))
            assert abs(np.mean(np.abs(out) ** 2) - 1.0) < 0.35

    @given(st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_pipeline_composition_matches_manual_chain(self, seed):
        """pipeline.apply == stage-by-stage application with the same RNG
        stream — chaining adds nothing but order."""
        rng = np.random.default_rng(seed)
        stages = tuple(_sample_stage(k, rng)
                       for k in ("rayleigh", "clip", "cw_tone"))
        x = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        piped = ImpairmentPipeline(stages).apply(
            x, np.random.default_rng(seed + 7), 13)
        manual = x
        chain_rng = np.random.default_rng(seed + 7)
        for stage in stages:
            manual = stage.apply(manual, chain_rng, 13)
        assert np.array_equal(piped, manual)

    @given(st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_channel_reconstruct_blind_to_impairments(self, seed):
        """Channel.reconstruct stays deterministic and impairment-free:
        the pipeline only distorts the forward path."""
        rng = np.random.default_rng(seed)
        pipe = ImpairmentPipeline((
            _sample_stage("rician", rng), _sample_stage("dc_offset", rng)))
        params = ChannelParams(gain=1.5 * np.exp(0.3j), freq_offset=1e-3,
                               impairments=pipe)
        bare = ChannelParams(gain=1.5 * np.exp(0.3j), freq_offset=1e-3)
        x = np.exp(1j * np.linspace(0, 9, 200))
        assert np.array_equal(
            Channel(params, np.random.default_rng(seed)).reconstruct(x, 3),
            Channel(bare, np.random.default_rng(seed)).reconstruct(x, 3))


class TestFrameProperties:
    @given(st.integers(0, 2**16), st.integers(16, 400))
    @settings(max_examples=20, deadline=None)
    def test_frame_symbol_count_formula(self, seed, n_bits):
        rng = np.random.default_rng(seed)
        frame = Frame.make(random_bits(n_bits, rng), preamble=PRE)
        assert frame.n_symbols == 32 + 48 + n_bits + 32

    @given(st.integers(0, 2**16), st.integers(16, 200))
    @settings(max_examples=15, deadline=None)
    def test_identical_payload_identical_symbols(self, seed, n_bits):
        """Retransmitting the same bits puts the same waveform on the air
        — the property collision matching (§4.2.2) relies on."""
        rng = np.random.default_rng(seed)
        payload = random_bits(n_bits, rng)
        f1 = Frame.make(payload, src=1, seq=5, preamble=PRE)
        f2 = Frame.make(payload, src=1, seq=5, preamble=PRE)
        assert np.array_equal(f1.symbols, f2.symbols)
