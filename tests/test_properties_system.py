"""Cross-module property tests on system-level invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.channel import Channel, ChannelParams
from repro.phy.frame import Frame, scramble_bits, descramble_soft_bpsk
from repro.phy.medium import Transmission, synthesize
from repro.phy.preamble import default_preamble
from repro.phy.pulse import MatchedSampler, PulseShaper
from repro.utils.bits import random_bits

PRE = default_preamble(32)
SH = PulseShaper()


class TestScramblerProperties:
    @given(st.integers(0, 2**20), st.integers(8, 300),
           st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_involution(self, seed, n, offset):
        bits = random_bits(n, np.random.default_rng(seed))
        once = scramble_bits(bits, offset)
        twice = scramble_bits(once, offset)
        assert np.array_equal(twice, bits)

    @given(st.integers(0, 2**20), st.integers(8, 200))
    @settings(max_examples=25, deadline=None)
    def test_soft_descramble_matches_bit_descramble(self, seed, n):
        """Descrambling BPSK soft values then slicing equals slicing then
        descrambling bits — the §6(a) soft path is consistent."""
        rng = np.random.default_rng(seed)
        bits = random_bits(n, rng)
        scrambled = scramble_bits(bits)
        soft_on_air = (2.0 * scrambled.astype(float) - 1.0).astype(complex)
        soft_clean = descramble_soft_bpsk(soft_on_air)
        sliced = (np.real(soft_clean) > 0).astype(np.uint8)
        assert np.array_equal(sliced, bits)


class TestMediumProperties:
    @given(st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_superposition_linearity(self, seed):
        """The air is linear: a two-packet capture equals the sum of the
        single-packet captures (same channels, no noise)."""
        rng = np.random.default_rng(seed)
        frames = [Frame.make(random_bits(64, rng), src=i + 1,
                             preamble=PRE) for i in range(2)]
        params = [ChannelParams(
            gain=(1.0 + rng.uniform()) * np.exp(1j * rng.uniform(0, 6)),
            freq_offset=float(rng.uniform(-4e-3, 4e-3)),
            sampling_offset=float(rng.uniform(0, 1)))
            for _ in range(2)]
        offsets = [0, int(rng.integers(10, 120))]
        txs = [Transmission.from_symbols(f.symbols, SH, p, o, str(i))
               for i, (f, p, o) in enumerate(zip(frames, params, offsets))]
        both = synthesize(txs, 0.0, np.random.default_rng(1),
                          leading=4, tail=8)
        assert np.allclose(
            both.samples,
            both.clean_components[0] + both.clean_components[1],
            atol=1e-12)

    @given(st.integers(0, 2**16), st.floats(0.0, 0.99))
    @settings(max_examples=15, deadline=None)
    def test_matched_filter_recovers_any_fractional_timing(self, seed, mu):
        """TX shaping -> fractional delay -> matched sampling is near-
        transparent for every sub-sample offset."""
        rng = np.random.default_rng(seed)
        frame = Frame.make(random_bits(96, rng), preamble=PRE)
        params = ChannelParams(gain=1.0, sampling_offset=mu)
        wave = Channel(params, rng).apply(SH.shape(frame.symbols))
        out = MatchedSampler(SH).sample(wave, SH.delay + mu,
                                        frame.n_symbols)
        core = slice(4, -4)
        assert np.max(np.abs(out[core] - frame.symbols[core])) < 0.05


class TestChannelProperties:
    @given(st.integers(0, 2**16), st.floats(-4e-3, 4e-3),
           st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_reconstruct_deterministic(self, seed, freq, start):
        """reconstruct() must be exactly repeatable (no hidden RNG) — the
        property ZigZag's image subtraction depends on."""
        params = ChannelParams(gain=1.3 * np.exp(1j * 0.2),
                               freq_offset=freq, sampling_offset=0.37)
        x = np.exp(1j * np.linspace(0, 5, 200))
        a = Channel(params, np.random.default_rng(seed)).reconstruct(
            x, start)
        b = Channel(params, np.random.default_rng(seed + 1)).reconstruct(
            x, start)
        assert np.array_equal(a, b)

    @given(st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_channel_linearity(self, seed):
        rng = np.random.default_rng(seed)
        params = ChannelParams(gain=2.0 * np.exp(1j * 0.5),
                               freq_offset=1e-3, sampling_offset=0.4)
        ch = Channel(params, rng)
        a = rng.standard_normal(80) + 1j * rng.standard_normal(80)
        b = rng.standard_normal(80) + 1j * rng.standard_normal(80)
        combined = ch.reconstruct(a + 3.0 * b, 10)
        separate = ch.reconstruct(a, 10) + 3.0 * ch.reconstruct(b, 10)
        assert np.allclose(combined, separate, atol=1e-10)


class TestFrameProperties:
    @given(st.integers(0, 2**16), st.integers(16, 400))
    @settings(max_examples=20, deadline=None)
    def test_frame_symbol_count_formula(self, seed, n_bits):
        rng = np.random.default_rng(seed)
        frame = Frame.make(random_bits(n_bits, rng), preamble=PRE)
        assert frame.n_symbols == 32 + 48 + n_bits + 32

    @given(st.integers(0, 2**16), st.integers(16, 200))
    @settings(max_examples=15, deadline=None)
    def test_identical_payload_identical_symbols(self, seed, n_bits):
        """Retransmitting the same bits puts the same waveform on the air
        — the property collision matching (§4.2.2) relies on."""
        rng = np.random.default_rng(seed)
        payload = random_bits(n_bits, rng)
        f1 = Frame.make(payload, src=1, seq=5, preamble=PRE)
        f2 = Frame.make(payload, src=1, seq=5, preamble=PRE)
        assert np.array_equal(f1.symbols, f2.symbols)
