"""RRC pulse shaping and matched sampling tests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.pulse import MatchedSampler, PulseShaper, rrc_function, rrc_taps
from repro.phy.resample import FractionalDelay


class TestRrc:
    def test_unit_energy_taps(self):
        taps = rrc_taps(sps=2, span=6, beta=0.35)
        assert np.sum(taps ** 2) == pytest.approx(1.0)

    def test_singularities_finite(self):
        beta = 0.35
        vals = rrc_function(np.array([0.0, 1 / (4 * beta),
                                      -1 / (4 * beta)]), beta)
        assert np.all(np.isfinite(vals))

    def test_bad_beta(self):
        with pytest.raises(ConfigurationError):
            rrc_function(np.array([0.0]), 1.5)

    def test_nyquist_pair(self):
        """RRC * RRC sampled at symbol spacing is (approximately) a delta:
        the raised-cosine zero-ISI property."""
        taps = rrc_taps(sps=2, span=8, beta=0.35)
        composite = np.convolve(taps, taps)
        center = composite.size // 2
        at_symbols = composite[center::2]
        assert at_symbols[0] == pytest.approx(1.0, abs=0.01)
        assert np.all(np.abs(at_symbols[1:]) < 0.02)


class TestShaper:
    def test_waveform_length(self, shaper):
        d = np.ones(10, complex)
        assert shaper.shape(d).size == shaper.waveform_length(10)

    def test_symbol_positions(self, shaper):
        """An isolated symbol's pulse peaks at delay + k*sps."""
        d = np.zeros(9, complex)
        d[4] = 1.0
        wave = shaper.shape(d)
        peak = int(np.argmax(np.abs(wave)))
        assert peak == shaper.delay + 4 * shaper.sps

    def test_empty_rejected(self, shaper):
        with pytest.raises(ConfigurationError):
            shaper.shape(np.zeros(0, complex))


class TestMatchedSampler:
    def test_integer_alignment_recovers_symbols(self, shaper, rng):
        d = (2 * rng.integers(0, 2, 150) - 1).astype(complex)
        wave = shaper.shape(d)
        out = MatchedSampler(shaper).sample(wave, shaper.delay, 150)
        assert np.max(np.abs(out - d)) < 0.02

    @pytest.mark.parametrize("mu", [0.25, 0.5, 0.75])
    def test_fractional_alignment(self, shaper, rng, mu):
        d = (2 * rng.integers(0, 2, 150) - 1).astype(complex)
        wave = FractionalDelay(mu, 6).apply(shaper.shape(d))
        out = MatchedSampler(shaper).sample(wave, shaper.delay + mu, 150)
        assert np.max(np.abs(out - d)[3:-3]) < 0.03

    def test_noise_power_preserved(self, shaper, rng):
        """The RRC is unit-energy, so white noise keeps its variance
        through the matched filter at symbol spacing."""
        noise = (rng.standard_normal(20_000)
                 + 1j * rng.standard_normal(20_000)) / np.sqrt(2)
        out = MatchedSampler(shaper).sample(noise, shaper.delay, 9_000)
        assert np.mean(np.abs(out) ** 2) == pytest.approx(1.0, rel=0.05)

    def test_count_zero(self, shaper):
        out = MatchedSampler(shaper).sample(np.ones(50, complex), 10.0, 0)
        assert out.size == 0

    def test_negative_count_rejected(self, shaper):
        with pytest.raises(ConfigurationError):
            MatchedSampler(shaper).sample(np.ones(50, complex), 10.0, -1)
