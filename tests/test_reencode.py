"""Re-encoder tests: chunk images must match the channel output (§4.2.3b)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.channel import Channel, ChannelParams
from repro.phy.estimation import ChannelEstimate
from repro.phy.frame import Frame
from repro.utils.bits import random_bits
from repro.zigzag.reencode import Reencoder, add_segment, subtract_segment


def build_scene(rng, preamble, shaper, params, offset=50):
    frame = Frame.make(random_bits(150, rng), preamble=preamble)
    wave = Channel(params, rng).apply(shaper.shape(frame.symbols),
                                      start_sample=offset)
    buffer = np.zeros(offset + wave.size + 20, complex)
    buffer[offset:offset + wave.size] = wave
    start = offset + shaper.delay + params.sampling_offset
    estimate = ChannelEstimate(gain=params.gain,
                               freq_offset=params.freq_offset,
                               sampling_offset=params.sampling_offset,
                               snr_db=20.0)
    return frame, buffer, Reencoder(shaper=shaper, estimate=estimate,
                                    start=start)


class TestImageAccuracy:
    @pytest.mark.parametrize("mu", [0.0, 0.3, 0.65])
    def test_whole_packet_subtraction(self, rng, preamble, shaper, mu):
        params = ChannelParams(gain=2.0 * np.exp(1j * 0.4),
                               freq_offset=1.5e-3, sampling_offset=mu)
        frame, buffer, reencoder = build_scene(rng, preamble, shaper,
                                               params)
        segment, base = reencoder.image(frame.symbols, 0)
        residual = buffer.copy()
        subtract_segment(residual, segment, base)
        assert np.mean(np.abs(residual) ** 2) \
            < 1e-3 * np.mean(np.abs(buffer) ** 2)

    def test_chunkwise_equals_whole(self, rng, preamble, shaper):
        """Linearity: chunk images superpose to the whole-packet image."""
        params = ChannelParams(gain=1.5, freq_offset=8e-4,
                               sampling_offset=0.4)
        frame, buffer, reencoder = build_scene(rng, preamble, shaper,
                                               params)
        whole, whole_base = reencoder.image(frame.symbols, 0)
        accumulated = np.zeros_like(buffer)
        for a, b in ((0, 70), (70, 200), (200, frame.n_symbols)):
            seg, base = reencoder.image(frame.symbols[a:b], a)
            add_segment(accumulated, seg, base)
        target = np.zeros_like(buffer)
        add_segment(target, whole, whole_base)
        assert np.allclose(accumulated, target, atol=1e-9)

    def test_empty_chunk_rejected(self, rng, preamble, shaper):
        params = ChannelParams()
        _, _, reencoder = build_scene(rng, preamble, shaper, params)
        with pytest.raises(ConfigurationError):
            reencoder.image(np.zeros(0, complex), 0)


class TestSegments:
    def test_subtract_clips_edges(self):
        buffer = np.ones(10, complex)
        subtract_segment(buffer, np.ones(6, complex), 7)
        assert np.allclose(buffer[:7], 1.0)
        assert np.allclose(buffer[7:], 0.0)
        subtract_segment(buffer, np.ones(4, complex), -2)
        # Only the in-range part [0, 2) of the segment lands.
        assert np.allclose(buffer[:2], 0.0)
        assert np.allclose(buffer[2:7], 1.0)

    def test_add_is_inverse_of_subtract(self, rng):
        buffer = rng.standard_normal(20) + 1j * rng.standard_normal(20)
        original = buffer.copy()
        seg = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        subtract_segment(buffer, seg, 5)
        add_segment(buffer, seg, 5)
        assert np.allclose(buffer, original)

    def test_core_slice_covers_symbols(self, rng, preamble, shaper):
        params = ChannelParams()
        _, _, reencoder = build_scene(rng, preamble, shaper, params)
        segment, base = reencoder.image(np.ones(20, complex), 10)
        core = reencoder.core_slice(10, 30, base, segment.size)
        assert core.stop - core.start >= 20 * shaper.sps - 2
        assert core.start >= 0
