"""Windowed-sinc interpolation and fractional delay tests (§4.2.3b)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.phy.resample import (
    FractionalDelay,
    sinc_interpolate,
    sinc_interpolate_uniform,
    sinc_kernel,
)


def narrowband(n, freqs=(0.07, -0.11)):
    t = np.arange(n, dtype=float)
    return sum(np.exp(2j * np.pi * f * t) for f in freqs)


def narrowband_at(t, freqs=(0.07, -0.11)):
    t = np.asarray(t, dtype=float)
    return sum(np.exp(2j * np.pi * f * t) for f in freqs)


class TestKernel:
    def test_zero_fraction_is_identityish(self):
        taps = sinc_kernel(0.0, 4)
        assert taps[4] == pytest.approx(1.0, abs=1e-6)
        assert np.allclose(np.delete(taps, 4), 0.0, atol=1e-6)

    def test_dc_gain_unity(self):
        for frac in (-0.4, 0.13, 0.5):
            assert np.sum(sinc_kernel(frac, 6)) == pytest.approx(1.0)

    def test_bad_half_width(self):
        with pytest.raises(ConfigurationError):
            sinc_kernel(0.1, 0)


class TestInterpolation:
    def test_integer_positions_exact(self):
        x = narrowband(64)
        out = sinc_interpolate(x, [10.0, 20.0, 30.0], half_width=6)
        assert np.allclose(out, x[[10, 20, 30]], atol=1e-6)

    def test_fractional_positions_accurate(self):
        x = narrowband(128)
        positions = np.array([30.3, 51.75, 77.5])
        out = sinc_interpolate(x, positions, half_width=6)
        assert np.allclose(out, narrowband_at(positions), atol=2e-3)

    def test_uniform_matches_general(self):
        x = narrowband(128)
        uniform = sinc_interpolate_uniform(x, 20.37, 50, half_width=5)
        general = sinc_interpolate(x, 20.37 + np.arange(50), half_width=5)
        assert np.allclose(uniform, general, atol=1e-9)

    def test_out_of_range_zero_padded(self):
        x = np.ones(10, complex)
        out = sinc_interpolate_uniform(x, -30.0, 5)
        assert np.allclose(out, 0.0, atol=1e-9)

    def test_empty_count(self):
        assert sinc_interpolate_uniform(np.ones(4, complex), 0, 0).size == 0

    @given(st.floats(-0.49, 0.49))
    @settings(max_examples=20, deadline=None)
    def test_fraction_property(self, frac):
        x = narrowband(80)
        out = sinc_interpolate_uniform(x, 40 + frac, 1, half_width=8)
        assert abs(out[0] - narrowband_at(40 + frac)) < 5e-3


class TestFractionalDelay:
    def test_delays_signal(self):
        x = narrowband(200)
        for d in (0.25, 0.5, 1.3, -0.7):
            out = FractionalDelay(d, half_width=6).apply(x)
            expected = narrowband_at(np.arange(200) - d)
            core = slice(12, -12)
            assert np.allclose(out[core], expected[core], atol=3e-3), d

    def test_zero_delay_identity(self):
        x = narrowband(50)
        out = FractionalDelay(0.0).apply(x)
        assert np.allclose(out, x, atol=1e-6)

    def test_empty_input(self):
        assert FractionalDelay(0.3).apply(np.zeros(0, complex)).size == 0

    def test_composition(self):
        """Delaying by a then b approximates delaying by a+b."""
        x = narrowband(200)
        ab = FractionalDelay(0.6, 8).apply(FractionalDelay(0.7, 8).apply(x))
        direct = FractionalDelay(1.3, 8).apply(x)
        assert np.allclose(ab[20:-20], direct[20:-20], atol=5e-3)
