"""The Monte-Carlo runner subsystem: spec, seeding, cache, execution."""

import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.mac.backoff import ExponentialBackoff, FixedWindowBackoff
from repro.runner import (
    MonteCarloRunner,
    RunResult,
    ScenarioSpec,
    SenderSpec,
    TrialResult,
    merge_flow_stats,
    parse_sweep,
    trial_rng,
    trial_seed,
)
from repro.runner.cache import SignalCache, cached_preamble, cached_shaper
from repro.runner.scenarios import TrialContext, available_scenarios
from repro.runner.seeding import trial_seeds
from repro.runner.spec import BackoffSpec, ChannelSpec
from repro.testbed.experiment import Design, run_capture_sweep_point
from repro.testbed.metrics import FlowStats


class TestSeeding:
    def test_trial_rng_deterministic(self):
        a = trial_rng(7, 3).standard_normal(4)
        b = trial_rng(7, 3).standard_normal(4)
        assert np.array_equal(a, b)

    def test_trials_independent(self):
        a = trial_rng(7, 0).standard_normal(4)
        b = trial_rng(7, 1).standard_normal(4)
        assert not np.array_equal(a, b)

    def test_trial_seed_stable_and_distinct(self):
        assert trial_seed(0, 5) == trial_seed(0, 5)
        seeds = trial_seeds(0, 50)
        assert len(set(seeds)) == 50
        assert all(0 <= s < (1 << 63) for s in seeds)

    def test_context_matches_helpers(self):
        ctx = TrialContext.for_trial(9, 2)
        assert ctx.seed == trial_seed(9, 2)
        assert np.array_equal(ctx.rng.standard_normal(3),
                              trial_rng(9, 2).standard_normal(3))


class TestSpec:
    def test_round_trip(self):
        spec = ScenarioSpec(
            kind="pair", design="802.11",
            senders=(SenderSpec("a", 12.0), SenderSpec("b", 9.0)),
            channel=ChannelSpec(noise_power=2.0),
            backoff=BackoffSpec(kind="exponential"),
            n_trials=3, seed=5, params={"x": 1.5})
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_from_toml(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text("""
[scenario]
kind = "pair"
n_trials = 2

[[sender]]
name = "a"
snr_db = 10.0

[backoff]
kind = "exponential"
cw_min = 15

[params]
snr_b_db = 9.0
""")
        spec = ScenarioSpec.from_toml(path)
        assert spec.kind == "pair" and spec.n_trials == 2
        assert spec.senders[0].snr_db == 10.0
        assert spec.backoff.cw_min == 15
        assert spec.param("snr_b_db") == 9.0

    def test_unknown_table_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict({"scenario": {"kind": "pair"},
                                    "typo_table": {}})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(kind="pair", design="wifi7")
        with pytest.raises(ConfigurationError):
            ScenarioSpec(kind="pair", n_trials=0)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(kind="pair", sense_probability=1.5)

    def test_overrides(self):
        spec = ScenarioSpec(kind="pair",
                            senders=(SenderSpec("a", 12.0),))
        assert spec.with_override("n_trials", 9).n_trials == 9
        assert spec.with_override("channel.noise_power", 0.5) \
            .channel.noise_power == 0.5
        assert spec.with_override("backoff.cw", 32).backoff.cw == 32
        assert spec.with_override("sender.a.snr_db", 14.0) \
            .senders[0].snr_db == 14.0
        # No-op value is still a valid override (sweep grids hit this).
        assert spec.with_override("sender.a.snr_db", 12.0) \
            .senders[0].snr_db == 12.0
        assert spec.with_override("params.q", 3).param("q") == 3
        # Unknown bare keys fall through to params.
        assert spec.with_override("sinr_db", 8.0).param("sinr_db") == 8.0
        with pytest.raises(ConfigurationError):
            spec.with_override("sender.nobody.snr_db", 1.0)
        with pytest.raises(ConfigurationError):
            spec.with_override("nested.unknown.path", 1.0)

    def test_backoff_build(self):
        assert isinstance(BackoffSpec(kind="fixed", cw=8).build(),
                          FixedWindowBackoff)
        expo = BackoffSpec(kind="exponential", cw_min=3, cw_max=7).build()
        assert isinstance(expo, ExponentialBackoff)
        with pytest.raises(ConfigurationError):
            BackoffSpec(kind="bogus").build()

    def test_parse_sweep(self):
        key, values = parse_sweep("snr_db=0:20:2")
        assert key == "snr_db"
        assert values == [0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20]
        key, values = parse_sweep("design=zigzag,802.11")
        assert key == "design" and values == ["zigzag", "802.11"]
        assert parse_sweep("x=1.5")[1] == [1.5]
        with pytest.raises(ConfigurationError):
            parse_sweep("no_equals")
        with pytest.raises(ConfigurationError):
            parse_sweep("x=0:10:-1")


class TestCache:
    def test_memoizes_and_counts(self):
        cache = SignalCache()
        calls = []
        assert cache.get("k", lambda: calls.append(1) or 42) == 42
        assert cache.get("k", lambda: calls.append(1) or 42) == 42
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1 and len(cache) == 1
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0

    def test_cached_reference_objects_are_shared(self):
        assert cached_preamble(32) is cached_preamble(32)
        assert cached_shaper() is cached_shaper()
        assert len(cached_preamble(16)) == 16


class TestResults:
    def _run(self):
        trials = [
            TrialResult(index=1, metrics={"x": 2.0}, airtime=1.0),
            TrialResult(index=0, metrics={"x": 1.0}, airtime=2.0),
        ]
        return RunResult(spec=None, trials=trials)

    def test_sorted_and_aggregated(self):
        run = self._run()
        assert [t.index for t in run.trials] == [0, 1]
        assert run.mean("x") == pytest.approx(1.5)
        mean, lo, hi = run.ci("x")
        assert lo <= mean <= hi
        assert run.total_airtime == pytest.approx(3.0)
        assert run.summary()["x"]["n"] == 2
        with pytest.raises(ConfigurationError):
            run.series("missing")

    def test_flow_merge(self):
        a, b = FlowStats(), FlowStats()
        a.record(0.0, airtime=1.0)
        b.record(1.0, airtime=2.0)
        merged = merge_flow_stats([a, b])
        assert merged.sent == 2 and merged.delivered == 1
        assert merged.airtime_slots == pytest.approx(3.0)
        run = RunResult(spec=None, trials=[
            TrialResult(index=0, metrics={}, flows={"A": a}),
            TrialResult(index=1, metrics={}, flows={"A": b}),
        ])
        assert run.flows()["A"].sent == 2


SPEC = ScenarioSpec(kind="schedule_failure", n_trials=16, seed=5,
                    params={"n_senders": 3})


class TestRunnerExecution:
    def test_registry_exposes_builtins(self):
        names = available_scenarios()
        for expected in ("pair", "capture", "three_senders", "zigzag_ber",
                         "schedule_failure", "testbed_pair"):
            assert expected in names

    def test_identical_across_worker_counts(self):
        """1 vs 4 processes, same seed -> bit-identical per-trial stats."""
        inline = MonteCarloRunner(n_workers=1).run(SPEC)
        fanned = MonteCarloRunner(n_workers=4).run(SPEC)
        assert [t.metrics for t in inline.trials] \
            == [t.metrics for t in fanned.trials]
        assert inline.mean("failed") == fanned.mean("failed")

    def test_identical_across_batch_sizes(self):
        one = MonteCarloRunner(n_workers=2, batch_size=1).run(SPEC)
        big = MonteCarloRunner(n_workers=2, batch_size=16).run(SPEC)
        assert [t.metrics for t in one.trials] \
            == [t.metrics for t in big.trials]

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable")
    def test_spawn_safe(self):
        """Seeding and spec transport survive the spawn start method."""
        spawned = MonteCarloRunner(n_workers=2, start_method="spawn").run(
            SPEC, n_trials=4)
        inline = MonteCarloRunner(n_workers=1).run(SPEC, n_trials=4)
        assert [t.metrics for t in spawned.trials] \
            == [t.metrics for t in inline.trials]

    def test_map_values_and_trials(self):
        runner = MonteCarloRunner()
        doubled = runner.map(_double, values=[1, 2, 3])
        assert doubled == [2, 4, 6]
        draws = runner.map(_draw, 3, seed=1)
        assert draws == runner.map(_draw, 3, seed=1)
        assert len(set(draws)) == 3
        with pytest.raises(ConfigurationError):
            runner.map(_draw)

    def test_map_parallel_matches_inline(self):
        inline = MonteCarloRunner(n_workers=1).map(_draw, 6, seed=2)
        fanned = MonteCarloRunner(n_workers=3).map(_draw, 6, seed=2)
        assert inline == fanned

    def test_sweep_common_seed(self):
        runner = MonteCarloRunner()
        sweep = runner.sweep(SPEC, "params.n_senders", [2, 3])
        assert sweep.values() == [2, 3]
        values, means, los, his = sweep.curve("failed")
        assert len(means) == 2
        assert np.all(los <= means) and np.all(means <= his)
        # Same root seed at every point (common random numbers).
        assert all(result.spec.seed == SPEC.seed
                   for _, result in sweep.points)

    def test_run_override_trials(self):
        result = MonteCarloRunner().run(SPEC, n_trials=2)
        assert len(result.trials) == 2

    def test_unsupported_design_rejected(self):
        """A scenario that would silently ignore the design must refuse
        it instead of mislabeling the results."""
        spec = ScenarioSpec(kind="three_senders", design="802.11",
                            n_trials=1)
        with pytest.raises(ConfigurationError, match="does not support"):
            MonteCarloRunner().run(spec)
        # Design-independent scenarios accept any design (it is ignored).
        MonteCarloRunner().run(
            ScenarioSpec(kind="schedule_failure", design="802.11",
                         n_trials=2, params={"n_senders": 2}))

    def test_pair_params_snr_overrides_senders(self):
        """`--param snr_db=...` must take effect even when the spec
        declares named senders (the documented sweep form)."""
        from repro.runner.scenarios import _pair_snrs
        spec = ScenarioSpec(kind="pair",
                            senders=(SenderSpec("a", 12.0),
                                     SenderSpec("b", 9.0)))
        assert _pair_snrs(spec) == (12.0, 9.0)
        swept = spec.with_override("snr_db", 6.0)
        assert _pair_snrs(swept) == (6.0, 6.0)

    def test_worker_validation(self):
        with pytest.raises(ConfigurationError):
            MonteCarloRunner(n_workers=-1)
        with pytest.raises(ConfigurationError):
            MonteCarloRunner(batch_size=0)
        auto = MonteCarloRunner(n_workers=0)
        assert auto.n_workers == (os.cpu_count() or 1)


class TestPortRegression:
    def test_capture_benchmark_matches_hand_rolled_loop(self):
        """The ported Fig 5-4 path produces exactly what the pre-port
        trial loop produces when fed the same derived seeds."""
        spec = ScenarioSpec(kind="capture", n_trials=3, seed=0,
                            n_packets=3, max_rounds=3,
                            params={"sinr_db": 8.0, "snr_b_db": 9.0})
        through_runner = MonteCarloRunner(n_workers=2).run(spec)
        from repro.runner.scenarios import _experiment_config
        config = _experiment_config(spec)
        hand_rolled = [
            run_capture_sweep_point(8.0, Design.ZIGZAG, snr_b_db=9.0,
                                    config=config, seed=seed)
            for seed in trial_seeds(spec.seed, spec.n_trials)
        ]
        for trial, expected in zip(through_runner.trials, hand_rolled):
            assert trial.metrics == pytest.approx(expected)

    @pytest.mark.skipif((os.cpu_count() or 1) < 2,
                        reason="needs >1 CPU to measure a speedup")
    def test_parallel_is_faster(self):
        spec = ScenarioSpec(kind="pair", n_trials=8, seed=0,
                            n_packets=4, max_rounds=3,
                            senders=(SenderSpec("A", 12.0),
                                     SenderSpec("B", 9.0)))
        t0 = time.perf_counter()
        MonteCarloRunner(n_workers=1).run(spec)
        serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        MonteCarloRunner(n_workers=4).run(spec)
        parallel = time.perf_counter() - t0
        assert parallel < serial


def _double(ctx, value):
    return value * 2


def _draw(ctx):
    return float(ctx.rng.uniform())
