"""Batched runner execution: seed invariance, spec plumbing, shared memory.

``ScenarioSpec.batch_size`` is a throughput knob, never a semantics
knob: per-trial randomness is still ``SeedSequence(root_seed,
spawn_key=(i,))`` drawn in the loop path's order, so for a given seed
the per-trial FlowStats and metrics are identical for any batch size ×
worker count combination (the batched analogue of the runner's existing
1-vs-N-workers guarantee). These tests pin that, plus the
``SharedCaptureArena`` handoff the pooled synthesis rides on and the
spec/registry plumbing around the opt-in.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runner import MonteCarloRunner, ScenarioSpec
from repro.runner.scenarios import (
    get_batched_scenario,
    scenario_supports_batching,
)
from repro.runner.shm import CaptureRef, SharedCaptureArena


def _spec(batch_size: int = 1, n_trials: int = 10,
          seed: int = 3) -> ScenarioSpec:
    return ScenarioSpec(kind="hidden_pair_decode", n_trials=n_trials,
                        seed=seed, payload_bits=64,
                        batch_size=batch_size)


def _flow_fingerprint(result) -> list:
    """Per-trial (metrics, per-flow sent/delivered/bers) in trial order —
    everything a sweep aggregates from."""
    out = []
    for trial in sorted(result.trials, key=lambda t: t.index):
        flows = {
            name: (stats.sent, stats.delivered, tuple(stats.bers))
            for name, stats in sorted(trial.flows.items())
        }
        out.append((trial.index, dict(trial.metrics), flows))
    return out


class TestBatchSizeInvariance:
    @pytest.fixture(scope="class")
    def loop_reference(self):
        """The unbatched single-worker run every combination must equal."""
        return _flow_fingerprint(
            MonteCarloRunner(n_workers=1).run(_spec(batch_size=1)))

    @pytest.mark.parametrize("batch_size", [2, 3, 8, 32])
    def test_batch_size_does_not_change_results(self, batch_size,
                                                loop_reference):
        result = MonteCarloRunner(n_workers=1).run(_spec(batch_size))
        assert _flow_fingerprint(result) == loop_reference

    @pytest.mark.parametrize("n_workers", [2, 3])
    def test_worker_count_does_not_change_results(self, n_workers,
                                                  loop_reference):
        """The pooled-synthesis + shared-memory path (workers > 1) is
        exercised here and must agree with the inline path."""
        result = MonteCarloRunner(n_workers=n_workers).run(_spec(4))
        assert _flow_fingerprint(result) == loop_reference

    def test_same_seed_same_flowstats_across_modes(self):
        """The satellite contract verbatim: same seeds => same FlowStats
        regardless of batch size or worker count."""
        fingerprints = [
            _flow_fingerprint(
                MonteCarloRunner(n_workers=w).run(_spec(b, seed=11)))
            for b, w in ((1, 1), (3, 1), (8, 2))
        ]
        assert all(fp == fingerprints[0] for fp in fingerprints[1:])

    def test_different_seeds_differ(self):
        """Fingerprint sanity: at a noisy operating point the comparison
        actually distinguishes runs (so the invariance assertions above
        aren't vacuously equal)."""
        def noisy(seed):
            spec = ScenarioSpec(kind="hidden_pair_decode", n_trials=10,
                                seed=seed, payload_bits=64, batch_size=4,
                                params={"snr_db": 2.0})
            return _flow_fingerprint(
                MonteCarloRunner(n_workers=1).run(spec))
        assert noisy(3) != noisy(4)


class TestSpecPlumbing:
    def test_batch_size_round_trips(self):
        spec = _spec(batch_size=16)
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again.batch_size == 16
        assert again == spec

    def test_default_is_loop_path(self):
        assert ScenarioSpec(kind="pair").batch_size == 1

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(kind="pair", batch_size=0)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(kind="pair", batch_size=-2)

    def test_registry_gates_unbatched_scenarios(self):
        assert scenario_supports_batching("hidden_pair_decode")
        assert not scenario_supports_batching("pair")
        with pytest.raises(ConfigurationError):
            get_batched_scenario("pair")
        runner = MonteCarloRunner(n_workers=1)
        with pytest.raises(ConfigurationError):
            runner.run(ScenarioSpec(kind="pair", n_trials=2,
                                    batch_size=4))


class TestSharedCaptureArena:
    def test_write_view_round_trip(self):
        arena = SharedCaptureArena.create(n_slots=4, slot_samples=32)
        try:
            samples = np.arange(20) * (1 - 2j)
            ref = arena.write(2, samples)
            assert ref.slot == 2 and ref.size == 20
            assert ref.inline is None
            view = ref.resolve(arena)
            assert np.array_equal(view, samples)
            # Zero-copy: the view aliases the shared grid.
            assert view.base is not None
        finally:
            arena.close()

    def test_stale_bytes_zeroed_between_writes(self):
        arena = SharedCaptureArena.create(n_slots=1, slot_samples=16)
        try:
            arena.write(0, np.ones(16, dtype=complex))
            short = arena.write(0, np.ones(4, dtype=complex))
            assert np.array_equal(arena.view(0, 16)[4:], np.zeros(12))
            assert np.array_equal(short.resolve(arena),
                                  np.ones(4, dtype=complex))
        finally:
            arena.close()

    def test_overflow_travels_inline(self):
        arena = SharedCaptureArena.create(n_slots=2, slot_samples=8)
        try:
            big = np.arange(20).astype(complex)
            ref = arena.write(0, big)  # oversize for the slot
            assert ref.slot == -1
            assert np.array_equal(ref.resolve(arena), big)
            ref2 = arena.write(-1, big[:4])  # out-of-range slot
            assert ref2.slot == -1
            assert np.array_equal(ref2.resolve(arena), big[:4])
        finally:
            arena.close()

    def test_attach_sees_owner_writes(self):
        arena = SharedCaptureArena.create(n_slots=2, slot_samples=8)
        try:
            samples = (np.arange(6) - 3j).astype(complex)
            ref = arena.write(1, samples)
            other = SharedCaptureArena.attach(arena.name, 2, 8)
            try:
                assert np.array_equal(ref.resolve(other), samples)
            finally:
                other.close()
        finally:
            arena.close()

    def test_close_is_idempotent(self):
        arena = SharedCaptureArena.create(n_slots=1, slot_samples=4)
        arena.close()
        arena.close()

    def test_capture_ref_is_plain_data(self):
        import pickle
        ref = CaptureRef(slot=-1, size=3,
                         inline=np.ones(3, dtype=complex))
        again = pickle.loads(pickle.dumps(ref))
        assert np.array_equal(again.inline, ref.inline)
