"""The ``python -m repro`` command line: run, sweep, list, overrides."""

import json

import pytest

from repro.runner.cli import main

PAIR_TOML = """
[scenario]
kind = "schedule_failure"
n_trials = 8
seed = 1

[backoff]
kind = "fixed"
cw = 16

[params]
n_senders = 3
"""


@pytest.fixture
def scenario_file(tmp_path):
    path = tmp_path / "scenario.toml"
    path.write_text(PAIR_TOML)
    return str(path)


class TestCli:
    def test_run(self, scenario_file, capsys):
        assert main(["run", scenario_file]) == 0
        out = capsys.readouterr().out
        assert "scenario=schedule_failure" in out
        assert "failed" in out

    def test_run_json_and_overrides(self, scenario_file, capsys):
        assert main(["run", scenario_file, "--json", "--trials", "4",
                     "--seed", "9", "--set", "backoff.cw=8"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_trials"] == 4
        assert payload["seed"] == 9
        assert "failed" in payload["metrics"]

    def test_run_parallel_matches_serial(self, scenario_file, capsys):
        assert main(["run", scenario_file, "--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(["run", scenario_file, "--json", "--workers", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        assert serial["metrics"] == parallel["metrics"]

    def test_sweep(self, scenario_file, capsys):
        assert main(["sweep", scenario_file, "--trials", "6",
                     "--param", "params.n_senders=2,4",
                     "--metrics", "failed"]) == 0
        out = capsys.readouterr().out
        assert "params.n_senders" in out
        assert out.count("\n") >= 4   # header + rule + two grid rows

    def test_sweep_json(self, scenario_file, capsys):
        assert main(["sweep", scenario_file, "--json", "--trials", "4",
                     "--param", "backoff.cw=8:16:8"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["value"] for p in payload["points"]] == [8, 16]

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pair" in out and "schedule_failure" in out
        assert "hidden_pair_fading" in out
        assert "hidden_pair_frontend" in out

    def test_run_impaired_scenario(self, tmp_path, capsys):
        """End-to-end CLI smoke over a TOML file with [impairments]."""
        path = tmp_path / "impaired.toml"
        path.write_text("""
[scenario]
kind = "hidden_pair_fading"
n_trials = 2
seed = 3
payload_bits = 200

[[impairments.sender]]
kind = "rayleigh"
coherence_samples = 2000
""")
        assert main(["run", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "ber_zigzag" in payload["metrics"]
        assert "ber_standard" in payload["metrics"]
        assert payload["design"] == "n/a"

    def test_sweep_impairment_stage_field(self, tmp_path, capsys):
        """--param can address an impairment-stage field by dotted path."""
        path = tmp_path / "impaired.toml"
        path.write_text("""
[scenario]
kind = "hidden_pair_impaired"
n_trials = 1
seed = 5
payload_bits = 200

[[impairments.capture]]
kind = "quantize"
enob = 8.0
""")
        assert main(["sweep", str(path), "--json",
                     "--param", "impairments.capture.0.enob=4,8"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["value"] for p in payload["points"]] == [4, 8]
        assert all("ber_zigzag" in p["metrics"] for p in payload["points"])

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.toml")]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_override_is_an_error(self, scenario_file, capsys):
        assert main(["run", scenario_file, "--set", "nosuch.field=1"]) == 2
        assert "error" in capsys.readouterr().err
