"""The supervision layer: fault isolation, pool recovery, checkpoints.

Every test here runs the *real* execution stack — no mocked pools — with
faults injected by the seeded chaos harness (:mod:`repro.runner.chaos`).
The load-bearing property throughout: **supervision never changes what a
surviving trial computes**. Retried, respawned, resumed, or corruption-
recovered trials must agree bit-for-bit with the fault-free baseline.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from dataclasses import replace
from pathlib import Path

import pytest

from repro.errors import (
    ConfigurationError,
    FaultInjectionError,
    ReproError,
    RunAbortedError,
)
from repro.runner import (
    FailurePolicy,
    FaultSpec,
    MonteCarloRunner,
    ScenarioSpec,
    TrialFailure,
    cleanup_arenas,
    find_leaked_arenas,
)
from repro.runner.chaos import ChaosInjector
from repro.runner.shm import SharedCaptureArena


def _spec(n_trials=10, seed=7, **kwargs):
    """A fast, DSP-free scenario (pure-Python greedy scheduling)."""
    return ScenarioSpec(kind="schedule_failure", n_trials=n_trials,
                        seed=seed, **kwargs)


def _metrics(result):
    return [t.metrics for t in result.trials]


RETRY = FailurePolicy(mode="retry", max_retries=3, backoff_base=0.0)


# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_draws_deterministic_per_trial_and_attempt(self):
        injector = ChaosInjector(FaultSpec(seed=5), in_worker=True)
        assert (injector._draws(3, 0) == injector._draws(3, 0)).all()
        assert not (injector._draws(3, 0) == injector._draws(3, 1)).all()
        assert not (injector._draws(3, 0) == injector._draws(4, 0)).all()

    def test_probability_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kill_worker_prob=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(hang_seconds=-1.0)

    def test_kill_and_hang_disarmed_in_parent(self):
        # The degraded inline path must always make progress: a spec
        # whose workers would die on every trial still completes inline.
        spec = _spec(n_trials=4,
                     faults=FaultSpec(kill_worker_prob=1.0,
                                      hang_trial_prob=1.0))
        result = MonteCarloRunner(n_workers=1).run(spec)
        assert result.n_completed == 4

    def test_raise_fault_armed_everywhere(self):
        injector = ChaosInjector(FaultSpec(raise_in_trial_prob=1.0),
                                 in_worker=False)
        with pytest.raises(FaultInjectionError):
            injector.pre_trial(0, 0)

    def test_policy_validation_and_backoff(self):
        with pytest.raises(ConfigurationError):
            FailurePolicy(mode="explode")
        policy = FailurePolicy(mode="retry", backoff_base=0.1,
                               backoff_cap=0.3)
        assert policy.retry_delay(0) == pytest.approx(0.1)
        assert policy.retry_delay(5) == pytest.approx(0.3)  # capped
        assert FailurePolicy(backoff_base=0.0).retry_delay(9) == 0.0

    def test_spec_tables_round_trip(self):
        spec = _spec(resilience=RETRY,
                     faults=FaultSpec(raise_in_trial_prob=0.25, seed=3))
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again.resilience == spec.resilience
        assert again.faults == spec.faults
        bumped = spec.with_override("resilience.max_retries", 7)
        assert bumped.resilience.max_retries == 7
        assert bumped.faults == spec.faults
        armed = spec.with_override("faults.kill_worker_prob", 0.5)
        assert armed.faults.kill_worker_prob == 0.5


# ----------------------------------------------------------------------
class TestTrialIsolation:
    def test_retry_bit_identical_inline(self):
        base = MonteCarloRunner(n_workers=1).run(_spec())
        chaotic = _spec(resilience=RETRY,
                        faults=FaultSpec(raise_in_trial_prob=0.4, seed=1))
        result = MonteCarloRunner(n_workers=1).run(chaotic)
        assert result.n_failed == 0 or result.supervision.trial_retries
        # Every completed trial agrees bit-for-bit with the baseline.
        assert _metrics(result)[:result.n_completed] == \
            [t.metrics for t in base.trials if t.index in
             {t2.index for t2 in result.trials}]
        assert result.supervision.trial_retries > 0

    def test_retry_bit_identical_pooled(self):
        base = MonteCarloRunner(n_workers=1).run(_spec())
        chaotic = _spec(resilience=RETRY,
                        faults=FaultSpec(raise_in_trial_prob=0.3, seed=2))
        result = MonteCarloRunner(n_workers=3, batch_size=2).run(chaotic)
        assert result.n_failed == 0
        assert _metrics(result) == _metrics(base)

    def test_skip_records_failures(self):
        spec = _spec(n_trials=6,
                     resilience=FailurePolicy(mode="skip"),
                     faults=FaultSpec(raise_in_trial_prob=1.0))
        result = MonteCarloRunner(n_workers=1).run(spec)
        assert result.n_completed == 0
        assert result.n_failed == 6
        assert result.failure_classes() == {"FaultInjectionError": 6}
        assert all(isinstance(f, TrialFailure) for f in result.failures)
        table = result.format_failure_table()
        assert "6 of 6 trials" in table
        assert "FaultInjectionError" in table

    def test_fail_fast_raises_run_aborted(self):
        spec = _spec(faults=FaultSpec(raise_in_trial_prob=1.0))
        with pytest.raises(RunAbortedError) as excinfo:
            MonteCarloRunner(n_workers=1).run(spec)
        assert excinfo.value.failures
        assert excinfo.value.failures[0].error_class == \
            "FaultInjectionError"

    def test_retry_exhaustion_records_terminal_failure(self):
        spec = _spec(n_trials=3,
                     resilience=FailurePolicy(mode="retry", max_retries=1,
                                              backoff_base=0.0),
                     faults=FaultSpec(raise_in_trial_prob=1.0))
        result = MonteCarloRunner(n_workers=1).run(spec)
        assert result.n_failed == 3
        assert all(f.attempts == 2 for f in result.failures)


# ----------------------------------------------------------------------
class TestPoolSupervision:
    def test_worker_kill_respawns_and_completes(self):
        base = MonteCarloRunner(n_workers=1).run(_spec(n_trials=12))
        chaotic = _spec(n_trials=12, resilience=RETRY,
                        faults=FaultSpec(kill_worker_prob=0.15, seed=5))
        result = MonteCarloRunner(n_workers=3, batch_size=2).run(chaotic)
        assert result.n_failed == 0
        assert _metrics(result) == _metrics(base)
        assert result.supervision.pool_respawns >= 1

    def test_watchdog_fires_on_injected_hang(self):
        policy = FailurePolicy(mode="retry", max_retries=2,
                               backoff_base=0.0, batch_timeout=0.75)
        spec = _spec(n_trials=6, resilience=policy,
                     faults=FaultSpec(hang_trial_prob=0.25,
                                      hang_seconds=20.0, seed=9))
        result = MonteCarloRunner(n_workers=2, batch_size=3).run(spec)
        assert result.supervision.watchdog_timeouts >= 1
        assert result.n_completed + result.n_failed == 6
        base = MonteCarloRunner(n_workers=1).run(_spec(n_trials=6))
        reference = {t.index: t.metrics for t in base.trials}
        for trial in result.trials:
            assert trial.metrics == reference[trial.index]

    def test_persistent_hang_becomes_timeout_failure(self):
        policy = FailurePolicy(mode="skip", batch_timeout=0.5)
        spec = _spec(n_trials=2, resilience=policy,
                     faults=FaultSpec(hang_trial_prob=1.0,
                                      hang_seconds=20.0))
        result = MonteCarloRunner(n_workers=2, batch_size=1).run(spec)
        assert result.n_failed == 2
        assert set(result.failure_classes()) == {"TrialTimeoutError"}


# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_resume_skips_completed_trials(self, tmp_path):
        spec = _spec()
        base = MonteCarloRunner(n_workers=1).run(spec)
        journal = tmp_path / "run.jsonl"
        MonteCarloRunner(n_workers=1, checkpoint=journal).run(
            spec, n_trials=6)
        resumed = MonteCarloRunner(n_workers=1, checkpoint=journal,
                                   resume=True).run(spec)
        assert resumed.n_completed == spec.n_trials
        assert _metrics(resumed) == _metrics(base)

    def test_resume_rejects_different_spec(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        MonteCarloRunner(n_workers=1, checkpoint=journal).run(_spec(seed=7))
        with pytest.raises(ConfigurationError, match="different scenario"):
            MonteCarloRunner(n_workers=1, checkpoint=journal,
                             resume=True).run(_spec(seed=8))

    def test_resume_without_checkpoint_rejected(self):
        with pytest.raises(ConfigurationError):
            MonteCarloRunner(resume=True)

    def test_torn_trailing_line_tolerated(self, tmp_path):
        spec = _spec()
        journal = tmp_path / "run.jsonl"
        MonteCarloRunner(n_workers=1, checkpoint=journal).run(
            spec, n_trials=5)
        # Simulate a parent killed mid-write: a torn half line at EOF.
        with journal.open("a") as handle:
            handle.write('{"kind": "trial", "point": "", "ind')
        resumed = MonteCarloRunner(n_workers=1, checkpoint=journal,
                                   resume=True).run(spec)
        base = MonteCarloRunner(n_workers=1).run(spec)
        assert _metrics(resumed) == _metrics(base)

    def test_sigkill_parent_then_resume_matches_aggregate(self, tmp_path):
        """The acceptance scenario: SIGKILL the parent mid-run, resume
        from the journal, and land on the same aggregate RunResult."""
        journal = tmp_path / "run.jsonl"
        driver = textwrap.dedent(f"""
            import os, signal
            from repro.runner import MonteCarloRunner, ScenarioSpec
            from repro.runner.resilience import CheckpointJournal

            record = CheckpointJournal.record
            def dying_record(self, point, trial, _n=[0]):
                record(self, point, trial)
                _n[0] += 1
                if _n[0] >= 4:
                    os.kill(os.getpid(), signal.SIGKILL)
            CheckpointJournal.record = dying_record
            spec = ScenarioSpec(kind="schedule_failure", n_trials=10,
                                seed=7)
            MonteCarloRunner(n_workers=1,
                             checkpoint={str(journal)!r}).run(spec)
        """)
        env = dict(os.environ)
        root = Path(__file__).resolve().parents[1]
        env["PYTHONPATH"] = str(root / "src")
        proc = subprocess.run([sys.executable, "-c", driver], env=env,
                              capture_output=True, timeout=120)
        assert proc.returncode == -signal.SIGKILL
        lines = journal.read_text().splitlines()
        assert len(lines) >= 5  # header + the journaled trials
        resumed = MonteCarloRunner(n_workers=1, checkpoint=journal,
                                   resume=True).run(_spec())
        base = MonteCarloRunner(n_workers=1).run(_spec())
        assert _metrics(resumed) == _metrics(base)
        assert resumed.summary() == base.summary()

    def test_kill_chaos_mid_sweep_resumes_identically(self, tmp_path):
        """Worker kills during a checkpointed sweep; a resumed sweep
        reproduces the fault-free sweep bit-for-bit without re-running
        journaled grid points."""
        spec = _spec(n_trials=6)
        values = [2, 3, 4]
        base = MonteCarloRunner(n_workers=1).sweep(
            spec, "params.n_senders", values)
        journal = tmp_path / "sweep.jsonl"
        chaotic = replace(spec, resilience=RETRY,
                          faults=FaultSpec(kill_worker_prob=0.1, seed=4))
        first = MonteCarloRunner(n_workers=2, batch_size=2,
                                 checkpoint=journal).sweep(
            chaotic, "params.n_senders", values)
        for (_, got), (_, want) in zip(first.points, base.points):
            assert _metrics(got) == _metrics(want)
        resumed = MonteCarloRunner(n_workers=1, checkpoint=journal,
                                   resume=True).sweep(
            chaotic, "params.n_senders", values)
        for (_, got), (_, want) in zip(resumed.points, base.points):
            assert _metrics(got) == _metrics(want)
            assert got.summary() == want.summary()

    def test_journal_round_trips_flows_and_extra(self, tmp_path):
        # hidden_pair_decode trials carry per-flow FlowStats; the journal
        # must reproduce them exactly for resumed aggregation.
        spec = ScenarioSpec(kind="hidden_pair_decode", n_trials=4, seed=3,
                            params={"payload_bits": 64})
        base = MonteCarloRunner(n_workers=1).run(spec)
        journal = tmp_path / "run.jsonl"
        MonteCarloRunner(n_workers=1, checkpoint=journal).run(
            spec, n_trials=2)
        resumed = MonteCarloRunner(n_workers=1, checkpoint=journal,
                                   resume=True).run(spec)
        assert _metrics(resumed) == _metrics(base)
        assert {n: (s.sent, s.delivered, s.airtime_slots, s.bers)
                for n, s in resumed.flows().items()} == \
            {n: (s.sent, s.delivered, s.airtime_slots, s.bers)
             for n, s in base.flows().items()}
        assert resumed.total_airtime == base.total_airtime


# ----------------------------------------------------------------------
class TestArenaHygiene:
    def test_no_leaked_arenas_after_chaos_run(self):
        spec = ScenarioSpec(
            kind="hidden_pair_decode", n_trials=8, seed=11, batch_size=4,
            params={"payload_bits": 64},
            resilience=FailurePolicy(mode="retry", max_retries=3,
                                     backoff_base=0.0),
            faults=FaultSpec(kill_worker_prob=0.1,
                             corrupt_shm_slot_prob=0.2, seed=2))
        result = MonteCarloRunner(n_workers=3).run(spec)
        assert result.n_completed == 8
        assert find_leaked_arenas() == []

    def test_no_leaked_arena_when_worker_raises_mid_batch(self):
        # Satellite (b): the arena must be unlinked even when synthesis
        # fails inside the pool and fail_fast aborts the run.
        spec = ScenarioSpec(
            kind="hidden_pair_decode", n_trials=6, seed=1, batch_size=3,
            params={"payload_bits": 64},
            faults=FaultSpec(raise_in_trial_prob=1.0))
        with pytest.raises(RunAbortedError):
            MonteCarloRunner(n_workers=2).run(spec)
        assert find_leaked_arenas() == []

    def test_atexit_guard_cleans_unclosed_arena(self):
        arena = SharedCaptureArena.create(2, 16)
        name = arena.name
        assert name in find_leaked_arenas()
        assert name in cleanup_arenas()
        assert name not in find_leaked_arenas()

    def test_corruption_detected_and_recovered_bit_identically(self):
        spec = ScenarioSpec(kind="hidden_pair_decode", n_trials=6,
                            seed=11, batch_size=3,
                            params={"payload_bits": 64})
        base = MonteCarloRunner(n_workers=1).run(
            replace(spec, batch_size=1))
        chaotic = replace(
            spec,
            resilience=FailurePolicy(mode="retry", max_retries=2,
                                     backoff_base=0.0),
            faults=FaultSpec(corrupt_shm_slot_prob=0.5, seed=2))
        result = MonteCarloRunner(n_workers=3).run(chaotic)
        assert result.supervision.transport_retries >= 1
        assert _metrics(result) == _metrics(base)


# ----------------------------------------------------------------------
def _map_boom(ctx, value):
    if value == "boom":
        raise ValueError("injected map failure")
    return value


class TestMapCancellation:
    def test_failed_batch_is_named_and_rest_cancelled(self):
        runner = MonteCarloRunner(n_workers=2, batch_size=1)
        values = ["ok0", "boom", "ok2", "ok3", "ok4", "ok5"]
        with pytest.raises(ReproError, match=r"map batch \d+"):
            runner.map(_map_boom, values=values)

    def test_map_inline_failure_still_raises(self):
        runner = MonteCarloRunner(n_workers=1)
        with pytest.raises(ValueError, match="injected map failure"):
            runner.map(_map_boom, values=["boom"])


# ----------------------------------------------------------------------
class TestCli:
    def _write_toml(self, tmp_path, extra=""):
        path = tmp_path / "scenario.toml"
        path.write_text(textwrap.dedent(f"""
            [scenario]
            kind = "schedule_failure"
            n_trials = 6
            seed = 7
            {extra}
        """))
        return path

    def test_failure_summary_printed(self, tmp_path, capsys):
        from repro.runner.cli import main
        path = self._write_toml(tmp_path, textwrap.dedent("""
            [resilience]
            mode = "skip"

            [faults]
            raise_in_trial_prob = 1.0
        """))
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "failures: 6 of 6 trials" in out
        assert "FaultInjectionError" in out

    def test_fail_fast_exit_code_and_summary(self, tmp_path, capsys):
        from repro.runner.cli import main
        path = self._write_toml(tmp_path, textwrap.dedent("""
            [faults]
            raise_in_trial_prob = 1.0
        """))
        assert main(["run", str(path)]) == 3
        err = capsys.readouterr().err
        assert "run aborted" in err
        assert "FaultInjectionError" in err

    def test_checkpoint_and_resume_flags(self, tmp_path, capsys):
        from repro.runner.cli import main
        path = self._write_toml(tmp_path)
        journal = tmp_path / "run.jsonl"
        assert main(["run", str(path), "--checkpoint", str(journal),
                     "--trials", "3"]) == 0
        capsys.readouterr()
        assert main(["run", str(path), "--checkpoint", str(journal),
                     "--resume", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_failed"] == 0
        reference = MonteCarloRunner(n_workers=1).run(_spec(n_trials=6))
        assert payload["metrics"] == json.loads(
            json.dumps(reference.summary()))
