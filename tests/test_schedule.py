"""Greedy chunk scheduler tests (§4.2.3 pairs, §4.5 N senders)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, ScheduleError
from repro.zigzag.schedule import (
    DecodeStep,
    Placement,
    greedy_schedule,
    pairwise_offsets_distinct,
    schedule_is_complete,
)


def pair_placements(d1, d2, n=100, sps=2):
    """The canonical two-collision pattern: A at 0 in both, B at d1/d2."""
    return [
        Placement("A", 0, 0.0, n, sps), Placement("B", 0, d1, n, sps),
        Placement("A", 1, 0.0, n, sps), Placement("B", 1, d2, n, sps),
    ]


class TestCanonicalPair:
    def test_complete_schedule(self):
        placements = pair_placements(80.0, 24.0)
        steps = greedy_schedule(placements)
        assert schedule_is_complete(placements, steps)

    def test_bootstrap_chunk_from_larger_offset(self):
        steps = greedy_schedule(pair_placements(80.0, 24.0))
        first = steps[0]
        assert first.packet == "A"
        assert first.collision == 0  # the collision with the larger offset
        assert first.i0 == 0

    def test_equal_offsets_fail(self):
        with pytest.raises(ScheduleError):
            greedy_schedule(pair_placements(40.0, 40.0))

    def test_flipped_order_pattern(self):
        """Fig 4-1b: the packets swap order between collisions."""
        placements = [
            Placement("A", 0, 0.0, 100), Placement("B", 0, 60.0, 100),
            Placement("B", 1, 0.0, 100), Placement("A", 1, 60.0, 100),
        ]
        steps = greedy_schedule(placements)
        assert schedule_is_complete(placements, steps)

    def test_different_sizes_pattern(self):
        """Fig 4-1c: colliding packets of different lengths."""
        placements = [
            Placement("A", 0, 0.0, 120), Placement("B", 0, 50.0, 60),
            Placement("A", 1, 0.0, 120), Placement("B", 1, 150.0, 60),
        ]
        steps = greedy_schedule(placements)
        assert schedule_is_complete(placements, steps)

    def test_collision_free_retransmission(self):
        """Fig 4-1f: second 'collision' holds only Bob — one equation is
        clean and everything unravels."""
        placements = [
            Placement("A", 0, 0.0, 100), Placement("B", 0, 30.0, 100),
            Placement("B", 1, 0.0, 100),
        ]
        steps = greedy_schedule(placements)
        assert schedule_is_complete(placements, steps)

    def test_margin_shrinks_chunks(self):
        no_margin = greedy_schedule(pair_placements(80.0, 24.0),
                                    margin_symbols=0.0)
        margin = greedy_schedule(pair_placements(80.0, 24.0),
                                 margin_symbols=2.0)
        assert margin[0].i1 <= no_margin[0].i1


class TestThreeSenders:
    def test_three_collisions_decodable(self):
        placements = []
        offsets = [(0.0, 40.0, 90.0), (30.0, 0.0, 70.0), (50.0, 20.0, 0.0)]
        for c, offs in enumerate(offsets):
            for name, off in zip("ABC", offs):
                placements.append(Placement(name, c, off, 80))
        steps = greedy_schedule(placements)
        assert schedule_is_complete(placements, steps)

    def test_identical_collisions_fail(self):
        placements = []
        for c in range(3):
            for name, off in zip("ABC", (0.0, 30.0, 60.0)):
                placements.append(Placement(name, c, off, 80))
        with pytest.raises(ScheduleError):
            greedy_schedule(placements)


class TestValidation:
    def test_inconsistent_lengths_rejected(self):
        placements = [Placement("A", 0, 0.0, 50),
                      Placement("A", 1, 0.0, 60)]
        with pytest.raises(ConfigurationError):
            greedy_schedule(placements)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            greedy_schedule([])

    def test_step_validation(self):
        with pytest.raises(ConfigurationError):
            DecodeStep("A", 0, 5, 5)

    def test_placement_validation(self):
        with pytest.raises(ConfigurationError):
            Placement("A", 0, 0.0, 0)


class TestCompletenessChecker:
    def test_detects_gap(self):
        placements = pair_placements(80.0, 24.0)
        steps = greedy_schedule(placements)
        assert not schedule_is_complete(placements, steps[:-1])

    def test_detects_out_of_order(self):
        placements = pair_placements(80.0, 24.0)
        steps = greedy_schedule(placements)
        assert not schedule_is_complete(placements, steps[::-1])


class TestAssertionCondition:
    def test_distinct_offsets_pass(self):
        assert pairwise_offsets_distinct(pair_placements(80.0, 24.0))

    def test_equal_offsets_fail(self):
        assert not pairwise_offsets_distinct(pair_placements(40.0, 40.0))

    def test_single_nonoverlapping_collision_ok(self):
        placements = [Placement("A", 0, 0.0, 20, 2),
                      Placement("B", 0, 100.0, 20, 2)]
        assert pairwise_offsets_distinct(placements)

    def test_single_overlapping_collision_fails(self):
        placements = [Placement("A", 0, 0.0, 60, 2),
                      Placement("B", 0, 30.0, 60, 2)]
        assert not pairwise_offsets_distinct(placements)


class TestProperties:
    @given(d1=st.integers(1, 50), d2=st.integers(1, 50),
           n=st.integers(10, 120))
    @settings(max_examples=60, deadline=None)
    def test_pair_schedules_iff_offsets_differ(self, d1, d2, n):
        placements = pair_placements(2.0 * d1, 2.0 * d2, n=n)
        if d1 == d2 and d1 < n:
            # Identical offsets with genuine overlap are undecodable;
            # without overlap (d >= n) both packets are clean anyway.
            with pytest.raises(ScheduleError):
                greedy_schedule(placements)
        else:
            steps = greedy_schedule(placements)
            assert schedule_is_complete(placements, steps)

    @given(st.lists(st.tuples(st.integers(0, 40), st.integers(0, 40),
                              st.integers(0, 40)),
                    min_size=3, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_assertion_4_5_1(self, slot_rounds):
        """If the pairwise-distinct condition holds, the greedy algorithm
        must succeed for three packets (Assertion 4.5.1).

        The paper's proof implicitly assumes non-degenerate geometry: when
        offsets align symbols of two packets to the *same sample*, those
        symbols merge into one unknown and back-substitution can dead-lock
        even though the stated condition holds (these ties are part of
        Fig 4-7's measured failure probability). Real offsets carry
        fractional timing, which we model with an off-grid slot size.
        """
        if any(len(set(slots)) < 3 for slots in slot_rounds):
            return
        placements = []
        for c, slots in enumerate(slot_rounds):
            base = min(slots)
            for name, slot in zip("ABC", slots):
                placements.append(
                    Placement(name, c, 2.7 * (slot - base), 90))
        if pairwise_offsets_distinct(placements, tolerance=1.0):
            steps = greedy_schedule(placements)
            assert schedule_is_complete(placements, steps)

    @given(d1=st.integers(5, 60), d2=st.integers(5, 60))
    @settings(max_examples=30, deadline=None)
    def test_steps_are_contiguous_prefixes(self, d1, d2):
        if d1 == d2:
            return
        placements = pair_placements(2.0 * d1, 2.0 * d2)
        steps = greedy_schedule(placements)
        cursor = {"A": 0, "B": 0}
        for step in steps:
            assert step.i0 == cursor[step.packet]
            cursor[step.packet] = step.i1
