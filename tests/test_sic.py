"""Capture-effect SIC tests (Fig 4-1d/e)."""

import numpy as np
import pytest

from repro.phy.channel import ChannelParams
from repro.phy.constellation import BPSK
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, synthesize
from repro.phy.sync import Synchronizer
from repro.utils.bits import random_bits
from repro.zigzag.engine import PacketSpec, PlacementParams
from repro.zigzag.sic import SicDecoder


def capture_scenario(rng, preamble, shaper, snr_strong=22.0, snr_weak=10.0,
                     offset=60, payload=200):
    frames = {
        "strong": Frame.make(random_bits(payload, rng), src=1,
                             preamble=preamble),
        "weak": Frame.make(random_bits(payload, rng), src=2,
                           preamble=preamble),
    }
    params = {
        "strong": ChannelParams(
            gain=np.sqrt(10 ** (snr_strong / 10))
            * np.exp(1j * rng.uniform(0, 6.28)),
            freq_offset=2e-3, sampling_offset=rng.uniform(0, 1),
            phase_noise_std=1e-3, tx_evm=0.03),
        "weak": ChannelParams(
            gain=np.sqrt(10 ** (snr_weak / 10))
            * np.exp(1j * rng.uniform(0, 6.28)),
            freq_offset=-3e-3, sampling_offset=rng.uniform(0, 1),
            phase_noise_std=1e-3, tx_evm=0.03),
    }
    cap = synthesize(
        [Transmission.from_symbols(frames["strong"].symbols, shaper,
                                   params["strong"], 0, "strong"),
         Transmission.from_symbols(frames["weak"].symbols, shaper,
                                   params["weak"], offset, "weak")],
        1.0, rng, leading=8, tail=30)
    sync = Synchronizer(preamble, shaper, threshold=0.3)
    placements = []
    for t in cap.transmissions:
        est = sync.acquire(cap.samples, t.symbol0,
                           coarse_freq=params[t.label].freq_offset,
                           noise_power=1.0)
        placements.append(PlacementParams(
            t.label, 0, t.symbol0 + est.sampling_offset, est))
    specs = {n: PacketSpec(n, frames[n].n_symbols, BPSK) for n in frames}
    return cap, frames, specs, placements


class TestSic:
    def test_single_collision_resolves_both(self, rng, preamble, shaper,
                                            stream_config):
        cap, frames, specs, placements = capture_scenario(rng, preamble,
                                                          shaper)
        results = SicDecoder(stream_config).decode(cap.samples, specs,
                                                   placements)
        assert results["strong"].ber_against(
            frames["strong"].body_bits) == 0.0
        assert results["weak"].ber_against(
            frames["weak"].body_bits) < 1e-2

    def test_strong_decoded_first(self, rng, preamble, shaper,
                                  stream_config):
        cap, frames, specs, placements = capture_scenario(rng, preamble,
                                                          shaper)
        results = SicDecoder(stream_config).decode(cap.samples, specs,
                                                   placements)
        assert results["strong"].via == "sic"
        assert results["strong"].success

    def test_weak_soft_symbols_kept_on_failure(self, rng, preamble, shaper,
                                               stream_config):
        """Fig 4-1d: the weak packet's faulty copy must be available for
        MRC with a later copy even when its CRC fails."""
        cap, frames, specs, placements = capture_scenario(
            rng, preamble, shaper, snr_strong=30.0, snr_weak=3.0)
        results = SicDecoder(stream_config).decode(cap.samples, specs,
                                                   placements)
        weak = results["weak"]
        assert weak.soft_symbols.size == frames["weak"].n_symbols

    def test_equal_power_sic_fails(self, rng, preamble, shaper,
                                   stream_config):
        """Without a power gap neither packet should fully decode — this is
        exactly the regime where ZigZag's pair decoding is needed."""
        cap, frames, specs, placements = capture_scenario(
            rng, preamble, shaper, snr_strong=10.0, snr_weak=10.0)
        results = SicDecoder(stream_config).decode(cap.samples, specs,
                                                   placements)
        bers = [results[n].ber_against(frames[n].body_bits)
                for n in frames]
        assert max(bers) > 0.01
