"""StandardDecoder end-to-end tests across channel impairments."""

import numpy as np
import pytest

from repro.phy.channel import ChannelParams
from repro.phy.isi import default_isi_taps
from repro.phy.frame import Frame
from repro.phy.medium import Transmission, synthesize
from repro.receiver.decoder import StandardDecoder
from repro.utils.bits import random_bits


def transmit(frame, shaper, params, rng, noise_power=1.0, offset=20):
    tx = Transmission.from_symbols(frame.symbols, shaper, params, offset,
                                   "x")
    return synthesize([tx], noise_power, rng, leading=10, tail=30)


class TestCleanDecoding:
    def test_high_snr_decodes_exactly(self, preamble, shaper, rng):
        frame = Frame.make(random_bits(300, rng), src=3, seq=11,
                           preamble=preamble)
        params = ChannelParams(gain=10.0 * np.exp(1j * 0.5))
        cap = transmit(frame, shaper, params, rng)
        result = StandardDecoder(preamble, shaper, noise_power=1.0).decode(
            cap.samples)
        assert result.success
        assert np.array_equal(result.bits, frame.body_bits)
        assert result.header.src == 3 and result.header.seq == 11

    def test_payload_recovered(self, preamble, shaper, rng):
        payload = random_bits(120, rng)
        frame = Frame.make(payload, preamble=preamble)
        cap = transmit(frame, shaper, ChannelParams(gain=8.0), rng)
        result = StandardDecoder(preamble, shaper, noise_power=1.0).decode(
            cap.samples)
        assert np.array_equal(result.payload, payload)

    @pytest.mark.parametrize("modulation", ["qpsk", "qam16"])
    def test_higher_order_modulations(self, preamble, shaper, rng,
                                      modulation):
        frame = Frame.make(random_bits(256, rng), modulation=modulation,
                           preamble=preamble)
        params = ChannelParams(gain=30.0 * np.exp(1j * 1.2))
        cap = transmit(frame, shaper, params, rng)
        result = StandardDecoder(preamble, shaper, noise_power=1.0).decode(
            cap.samples)
        assert result.success
        assert np.array_equal(result.bits, frame.body_bits)


class TestImpairments:
    def test_frequency_and_sampling_offset(self, preamble, shaper, rng):
        frame = Frame.make(random_bits(400, rng), preamble=preamble)
        params = ChannelParams(gain=6.0, freq_offset=3e-3,
                               sampling_offset=0.55,
                               phase_noise_std=1e-3)
        cap = transmit(frame, shaper, params, rng)
        decoder = StandardDecoder(preamble, shaper, noise_power=1.0,
                                  coarse_freq=3e-3 * 0.99)
        result = decoder.decode(cap.samples)
        assert result.success

    def test_isi_needs_equalizer(self, preamble, shaper, rng):
        frame = Frame.make(random_bits(400, rng), preamble=preamble)
        params = ChannelParams(gain=4.0,
                               isi_taps=tuple(default_isi_taps(0.45)))
        cap = transmit(frame, shaper, params, rng)
        with_eq = StandardDecoder(preamble, shaper, noise_power=1.0)
        without_eq = StandardDecoder(preamble, shaper, noise_power=1.0,
                                     use_equalizer=False)
        ber_with = with_eq.decode(cap.samples).ber_against(frame.body_bits)
        ber_without = without_eq.decode(cap.samples).ber_against(
            frame.body_bits)
        assert ber_with < 1e-3
        assert ber_with <= ber_without

    def test_tracking_ablation_breaks_long_packets(self, preamble, shaper,
                                                   rng):
        """Table 5.1 row 2: without phase tracking a residual frequency
        error accumulates and the packet fails."""
        frame = Frame.make(random_bits(1200, rng), preamble=preamble)
        params = ChannelParams(gain=8.0, freq_offset=2e-3)
        cap = transmit(frame, shaper, params, rng)
        coarse = 2e-3 + 1.2e-4  # residual error that accumulates phase
        tracked = StandardDecoder(preamble, shaper, noise_power=1.0,
                                  coarse_freq=coarse)
        untracked = StandardDecoder(preamble, shaper, noise_power=1.0,
                                    coarse_freq=coarse, track_phase=False)
        assert tracked.decode(cap.samples).ber_against(
            frame.body_bits) < 1e-3
        assert untracked.decode(cap.samples).ber_against(
            frame.body_bits) > 0.05


class TestFailureModes:
    def test_noise_only_returns_failure(self, preamble, shaper, rng):
        noise = rng.standard_normal(800) + 1j * rng.standard_normal(800)
        result = StandardDecoder(preamble, shaper,
                                 noise_power=1.0).decode(noise)
        assert not result.success
        assert result.bits.size == 0

    def test_truncated_capture(self, preamble, shaper, rng):
        frame = Frame.make(random_bits(400, rng), preamble=preamble)
        cap = transmit(frame, shaper, ChannelParams(gain=8.0), rng)
        result = StandardDecoder(preamble, shaper, noise_power=1.0).decode(
            cap.samples[:300])
        assert not result.success

    def test_ber_counts_missing_bits(self, preamble, shaper, rng):
        frame = Frame.make(random_bits(64, rng), preamble=preamble)
        from repro.receiver.result import DecodeResult
        failure = DecodeResult.failure("x")
        assert failure.ber_against(frame.body_bits) == 1.0
