"""Runner wiring of the streaming scenarios (ap_stream / offered_load)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runner import MonteCarloRunner, ScenarioSpec
from repro.runner.builders import _parse_hidden_pairs, build_stream_session
from repro.runner.scenarios import _fairness_ratio


def stream_spec(kind="ap_stream", **params):
    extras = {"hidden_pairs": "A:B", "chunk_samples": 512}
    extras.update(params)
    return ScenarioSpec(kind=kind, n_trials=1, seed=3, payload_bits=200,
                        n_packets=2, params=extras)


class TestApStreamScenario:
    def test_reports_both_designs_and_per_client_metrics(self):
        result = MonteCarloRunner().run(stream_spec())
        summary = result.summary()
        for key in ("throughput_zigzag", "throughput_80211",
                    "delivered_zigzag", "delivered_80211",
                    "loss_zigzag", "loss_80211", "zigzag_matches",
                    "throughput_A", "loss_A", "max_resident_samples"):
            assert key in summary, key
        # Hidden-pair-dominated air: the ZigZag AP must win on delivered
        # packets (the PR's acceptance criterion).
        assert result.mean("delivered_zigzag") \
            > result.mean("delivered_80211")
        flows = result.flows()
        assert "zigzag_A" in flows and "80211_A" in flows

    def test_engine_param_threads_through(self):
        """params.engine selects the session core; event is the default
        and the slot-clocked reference stays reachable."""
        default = build_stream_session(
            stream_spec(), np.random.default_rng(0), "zigzag")
        assert default.config.engine == "event"
        slot = build_stream_session(
            stream_spec(engine="slot"), np.random.default_rng(0), "zigzag")
        assert slot.config.engine == "slot"
        with pytest.raises(ConfigurationError):
            build_stream_session(stream_spec(engine="nope"),
                                 np.random.default_rng(0), "zigzag")

    def test_default_clients_from_params(self):
        """Without [[sender]] entries, params.n_clients symmetric clients
        named A, B, ... are created."""
        session = build_stream_session(
            stream_spec(n_clients=4), np.random.default_rng(0), "zigzag")
        assert [c.client.name for c in session.clients] \
            == ["A", "B", "C", "D"]

    def test_sender_entries_respected(self):
        spec = ScenarioSpec.from_dict({
            "scenario": {"kind": "ap_stream", "payload_bits": 200,
                         "n_packets": 2},
            "sender": [{"name": "A", "snr_db": 14.0},
                       {"name": "B", "snr_db": 9.0, "offered_load": 0.5}],
            "params": {"hidden_pairs": "A:B"},
        })
        session = build_stream_session(spec, np.random.default_rng(0),
                                       "zigzag")
        by_name = {c.client.name: c.client for c in session.clients}
        assert by_name["A"].snr_db == 14.0
        assert by_name["A"].offered_load is None
        assert by_name["B"].offered_load == 0.5

    def test_offered_load_scenario_runs(self):
        spec = stream_spec(kind="offered_load", offered_load=0.5)
        result = MonteCarloRunner().run(spec)
        assert "throughput_zigzag" in result.summary()

    def test_spec_roundtrips_offered_load(self):
        spec = ScenarioSpec.from_dict({
            "scenario": {"kind": "offered_load"},
            "sender": [{"name": "A", "snr_db": 12.0,
                        "offered_load": 0.4}],
        })
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.senders[0].offered_load == 0.4


class TestHiddenPairsParsing:
    def test_parse(self):
        assert _parse_hidden_pairs("A:B,B:C") == (("A", "B"), ("B", "C"))

    @pytest.mark.parametrize("bad", ["AB", "A:", ":B", "A:B,",
                                     "A;B"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigurationError):
            _parse_hidden_pairs(bad)


class TestFairnessRatio:
    def test_all_zero_is_perfectly_even(self):
        """Regression: an all-starved trial must not report 0.0 (which
        reads as 'more fair than equal shares')."""
        assert _fairness_ratio([0.0, 0.0, 0.0]) == 1.0

    def test_normal_ratio(self):
        assert _fairness_ratio([0.2, 0.1]) == pytest.approx(2.0)

    def test_one_starved_sender_is_unfair(self):
        assert _fairness_ratio([0.3, 0.0]) > 1e8
