"""Synchronizer tests: detection positions, scores, acquisition accuracy."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.channel import ChannelParams
from repro.phy.medium import Transmission, synthesize
from repro.phy.sync import Synchronizer


def one_packet_capture(frame, shaper, params, offset, rng,
                       noise_power=1.0, leading=8):
    tx = Transmission.from_symbols(frame.symbols, shaper, params, offset,
                                   "x")
    return synthesize([tx], noise_power, rng, leading=leading, tail=30)


class TestDetection:
    def test_position_is_symbol0_center(self, preamble, shaper, small_frame,
                                         rng):
        p = ChannelParams(gain=4.0)
        cap = one_packet_capture(small_frame, shaper, p, 25, rng)
        sync = Synchronizer(preamble, shaper, threshold=0.4)
        peaks = sync.detect(cap.samples)
        # Sidelobes of a 32-symbol preamble can clear a low threshold; the
        # true start must be the strongest detection.
        best = max(peaks, key=lambda pk: pk.score)
        assert best.position == cap.transmissions[0].symbol0

    def test_detects_under_frequency_offset(self, preamble, shaper,
                                            small_frame, rng):
        f = 4e-3
        p = ChannelParams(gain=4.0, freq_offset=f)
        cap = one_packet_capture(small_frame, shaper, p, 25, rng)
        sync = Synchronizer(preamble, shaper, threshold=0.4)
        compensated = sync.detect(cap.samples, coarse_freq=f,
                                  max_peaks=1)
        assert len(compensated) == 1
        assert compensated[0].position == cap.transmissions[0].symbol0
        # Without compensation the large offset destroys the correlation.
        scores = sync.correlation_scores(cap.samples, 0.0)
        comp_scores = sync.correlation_scores(cap.samples, f)
        assert comp_scores.max() > scores.max()

    def test_two_packets_two_peaks(self, preamble, shaper, small_frame,
                                   rng):
        p1 = ChannelParams(gain=4.0)
        p2 = ChannelParams(gain=4.0 * np.exp(1j))
        t1 = Transmission.from_symbols(small_frame.symbols, shaper, p1, 0,
                                       "a")
        t2 = Transmission.from_symbols(small_frame.symbols, shaper, p2, 150,
                                       "b")
        cap = synthesize([t1, t2], 1.0, rng, leading=8, tail=30)
        sync = Synchronizer(preamble, shaper, threshold=0.3)
        peaks = sync.detect(cap.samples)
        positions = [p.position for p in peaks]
        assert cap.transmissions[0].symbol0 in positions
        assert cap.transmissions[1].symbol0 in positions

    def test_no_peak_in_noise(self, preamble, shaper, rng):
        sync = Synchronizer(preamble, shaper, threshold=0.5)
        noise = (rng.standard_normal(600) + 1j * rng.standard_normal(600))
        assert sync.detect(noise) == []

    def test_threshold_validation(self, preamble, shaper):
        with pytest.raises(ConfigurationError):
            Synchronizer(preamble, shaper, threshold=1.5)


class TestAcquisition:
    @pytest.mark.parametrize("mu", [0.0, 0.3, 0.72])
    def test_sampling_offset_recovered(self, preamble, shaper, small_frame,
                                       rng, mu):
        p = ChannelParams(gain=4.0, sampling_offset=mu)
        cap = one_packet_capture(small_frame, shaper, p, 25, rng)
        sync = Synchronizer(preamble, shaper)
        est = sync.acquire(cap.samples, cap.transmissions[0].symbol0)
        # mu is recovered modulo the integer peak position.
        assert est.sampling_offset == pytest.approx(mu, abs=0.08)

    def test_gain_recovered(self, preamble, shaper, small_frame, rng):
        gain = 5.0 * np.exp(1j * 1.1)
        p = ChannelParams(gain=gain, sampling_offset=0.4)
        cap = one_packet_capture(small_frame, shaper, p, 25, rng,
                                 noise_power=0.1)
        sync = Synchronizer(preamble, shaper)
        est = sync.acquire(cap.samples, cap.transmissions[0].symbol0,
                           noise_power=0.1)
        assert abs(est.gain) == pytest.approx(abs(gain), rel=0.1)
        assert np.angle(est.gain * np.conj(gain)) == pytest.approx(0.0,
                                                                   abs=0.15)

    def test_freq_refit_optional(self, preamble, shaper, small_frame, rng):
        p = ChannelParams(gain=4.0, freq_offset=2e-3)
        cap = one_packet_capture(small_frame, shaper, p, 25, rng,
                                 noise_power=0.01)
        sync = Synchronizer(preamble, shaper)
        pos = cap.transmissions[0].symbol0
        kept = sync.acquire(cap.samples, pos, coarse_freq=1.9e-3)
        assert kept.freq_offset == 1.9e-3
        refined = sync.acquire(cap.samples, pos, coarse_freq=1.9e-3,
                               refine_freq=True)
        assert refined.freq_offset == pytest.approx(2e-3, abs=3e-4)

    def test_snr_estimate_reasonable(self, preamble, shaper, small_frame,
                                     rng):
        p = ChannelParams(gain=np.sqrt(10 ** 1.2))  # 12 dB over unit noise
        cap = one_packet_capture(small_frame, shaper, p, 25, rng)
        sync = Synchronizer(preamble, shaper)
        est = sync.acquire(cap.samples, cap.transmissions[0].symbol0,
                           noise_power=1.0)
        assert est.snr_db == pytest.approx(12.0, abs=2.0)
