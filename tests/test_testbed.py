"""Testbed substrate tests: path loss, topology, metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.testbed.metrics import (
    BER_DELIVERY_THRESHOLD,
    FlowStats,
    loss_rate,
    normalized_throughput,
)
from repro.testbed.pathloss import LogDistancePathLoss
from repro.testbed.topology import SensingClass, Testbed, default_testbed


class TestPathLoss:
    def test_monotone_in_distance(self):
        model = LogDistancePathLoss()
        d = np.array([1.0, 5.0, 20.0, 100.0])
        loss = model.mean_loss_db(d)
        assert np.all(np.diff(loss) > 0)

    def test_exponent_slope(self):
        model = LogDistancePathLoss(exponent=3.0, shadowing_db=0.0)
        l10 = model.mean_loss_db(10.0)
        l100 = model.mean_loss_db(100.0)
        assert l100 - l10 == pytest.approx(30.0)

    def test_below_reference_clamped(self):
        model = LogDistancePathLoss()
        assert model.mean_loss_db(0.01) == model.mean_loss_db(1.0)

    def test_shadowing_statistics(self, rng):
        model = LogDistancePathLoss(shadowing_db=5.0)
        samples = model.sample_loss_db(np.full(20_000, 10.0), rng)
        assert np.std(samples) == pytest.approx(5.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogDistancePathLoss(exponent=0.0)


class TestTopology:
    def test_default_testbed_mix_near_paper(self):
        """The calibrated layout approximates the paper's 12/8/80 split."""
        mixes = []
        for seed in range(5):
            tb = default_testbed(seed)
            mix = tb.sensing_mix()
            mixes.append([mix[SensingClass.PERFECT],
                          mix[SensingClass.PARTIAL],
                          mix[SensingClass.HIDDEN]])
        mean = np.mean(mixes, axis=0)
        assert 0.65 <= mean[0] <= 0.95   # perfect ~0.80
        assert mean[2] >= 0.03           # hidden pairs exist

    def test_sense_probability_interpolation(self):
        snr = np.array([[np.inf, 3.0], [3.0, np.inf]])
        tb = Testbed(positions=np.zeros((2, 2)), snr_db=snr,
                     cs_full_db=4.0, cs_none_db=2.0)
        assert tb.sense_probability(0, 1) == pytest.approx(0.5)
        assert tb.sensing_class(0, 1) is SensingClass.PARTIAL

    def test_hidden_classification(self):
        snr = np.array([[np.inf, 1.0], [1.0, np.inf]])
        tb = Testbed(positions=np.zeros((2, 2)), snr_db=snr)
        assert tb.sensing_class(0, 1) is SensingClass.HIDDEN

    def test_sample_pair_returns_reachable_ap(self, rng):
        tb = default_testbed(3)
        a, b, ap = tb.sample_pair(rng)
        assert ap not in (a, b)
        assert tb.snr_db[ap, a] >= 3.0 and tb.snr_db[ap, b] >= 3.0

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            Testbed(positions=np.zeros((3, 2)), snr_db=np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            Testbed(positions=np.zeros((2, 2)),
                    snr_db=np.zeros((2, 2)), cs_full_db=1.0,
                    cs_none_db=2.0)


class TestMetrics:
    def test_delivery_rule(self):
        stats = FlowStats()
        stats.record(ber=0.0, airtime=1.0)
        stats.record(ber=BER_DELIVERY_THRESHOLD, airtime=1.0)  # not ok
        stats.record(ber=5e-4, airtime=1.0)
        assert stats.delivered == 2
        assert stats.loss_rate == pytest.approx(1.0 / 3.0)

    def test_throughput_shared_airtime(self):
        stats = FlowStats()
        for _ in range(4):
            stats.record(0.0, airtime=1.0)
        assert stats.throughput(total_airtime=8.0) == pytest.approx(0.5)

    def test_empty_flow(self):
        stats = FlowStats()
        assert stats.loss_rate == 0.0
        assert stats.throughput() == 0.0

    def test_aggregate_helpers(self):
        flows = {"A": FlowStats(), "B": FlowStats()}
        flows["A"].record(0.0, 1.0)
        flows["B"].record(1.0, 1.0)
        assert loss_rate(flows) == pytest.approx(0.5)
        tput = normalized_throughput(flows, total_airtime=2.0)
        assert tput["A"] == pytest.approx(0.5)
        with pytest.raises(ConfigurationError):
            normalized_throughput(flows, total_airtime=0.0)
