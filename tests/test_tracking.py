"""Phase tracker and Mueller–Müller timing tracker tests (§4.2.4b,c)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.phy.constellation import BPSK, QPSK
from repro.phy.tracking import MuellerMullerTracker, PhaseTracker


class TestPhaseTracker:
    def test_tracks_constant_phase(self, rng):
        bits = rng.integers(0, 2, 200)
        x = BPSK.modulate(bits)
        y = x * np.exp(1j * 0.4)
        tracker = PhaseTracker()
        corrected, decisions, phases = tracker.process(y, BPSK)
        # After convergence the corrected symbols sit near the true points.
        tail_error = np.abs(corrected[100:] - x[100:])
        assert tail_error.max() < 0.15
        assert phases[-1] == pytest.approx(0.4, abs=0.1)

    def test_tracks_frequency_ramp(self, rng):
        bits = rng.integers(0, 2, 800)
        x = BPSK.modulate(bits)
        freq = 0.002  # rad/symbol
        y = x * np.exp(1j * freq * np.arange(800))
        tracker = PhaseTracker()
        corrected, decisions, _ = tracker.process(y, BPSK)
        errors = np.abs(np.sign(corrected.real[400:])
                        - np.sign(x.real[400:]))
        assert errors.max() == 0.0
        assert tracker.freq == pytest.approx(freq, abs=5e-4)

    def test_data_aided_mode(self, rng):
        known = BPSK.modulate(rng.integers(0, 2, 64))
        y = known * np.exp(1j * 1.2)  # beyond blind BPSK ambiguity
        tracker = PhaseTracker()
        corrected, decisions, _ = tracker.process(y, BPSK, known=known)
        assert np.allclose(decisions, known)
        assert tracker.phase == pytest.approx(1.2, abs=0.2)

    def test_disabled_tracker_never_updates(self, rng):
        y = BPSK.modulate(rng.integers(0, 2, 50)) * np.exp(1j * 0.3)
        tracker = PhaseTracker(enabled=False)
        tracker.process(y, BPSK)
        assert tracker.phase == 0.0
        assert tracker.freq == 0.0

    def test_known_length_mismatch(self):
        tracker = PhaseTracker()
        with pytest.raises(ConfigurationError):
            tracker.process(np.ones(4, complex), BPSK,
                            known=np.ones(3, complex))

    def test_segmented_equals_whole(self, rng):
        """Chunked processing must equal one-shot processing — the property
        ZigZag's chunk decoding relies on."""
        bits = rng.integers(0, 2, 300)
        y = BPSK.modulate(bits) * np.exp(1j * (0.1 + 0.001 *
                                               np.arange(300)))
        whole = PhaseTracker()
        w_corr, _, _ = whole.process(y, BPSK)
        chunked = PhaseTracker()
        parts = [chunked.process(y[a:b], BPSK)[0]
                 for a, b in ((0, 100), (100, 180), (180, 300))]
        assert np.allclose(np.concatenate(parts), w_corr)

    def test_advance_coasts_at_freq(self):
        tracker = PhaseTracker()
        tracker.freq = 0.01
        tracker.advance(10)
        assert tracker.phase == pytest.approx(0.1)
        with pytest.raises(ConfigurationError):
            tracker.advance(-1)

    def test_snapshot_restore(self):
        tracker = PhaseTracker()
        tracker.phase, tracker.freq = 0.5, 0.002
        state = tracker.snapshot()
        tracker.phase = 99.0
        tracker.restore(state)
        assert tracker.phase == 0.5 and tracker.freq == 0.002

    def test_works_with_qpsk(self, rng):
        bits = rng.integers(0, 2, 400)
        x = QPSK.modulate(bits)
        y = x * np.exp(1j * (0.2 + 0.0005 * np.arange(x.size)))
        corrected, decisions, _ = PhaseTracker().process(y, QPSK)
        assert np.allclose(decisions[100:], x[100:])


class TestMuellerMuller:
    def test_zero_error_on_perfect_timing(self, rng):
        d = BPSK.modulate(rng.integers(0, 2, 500))
        tracker = MuellerMullerTracker()
        final = tracker.process(d, d)
        assert abs(final) < 0.05

    def test_detects_timing_error_sign(self, shaper, rng):
        """A late sampling phase produces a consistent nonzero estimate."""
        from repro.phy.pulse import MatchedSampler
        d = BPSK.modulate(rng.integers(0, 2, 600))
        wave = shaper.shape(d)
        sampler = MatchedSampler(shaper)
        early = sampler.sample(wave, shaper.delay - 0.3, 600)
        late = sampler.sample(wave, shaper.delay + 0.3, 600)
        t_early = MuellerMullerTracker().process(early,
                                                 BPSK.slice_symbols(early))
        t_late = MuellerMullerTracker().process(late,
                                                BPSK.slice_symbols(late))
        assert np.sign(t_early) != np.sign(t_late)

    def test_reset(self):
        tracker = MuellerMullerTracker()
        tracker.update(1.0 + 0j, 1.0 + 0j)
        tracker.offset_estimate = 0.5
        tracker.reset()
        assert tracker.offset_estimate == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            MuellerMullerTracker().process(np.ones(3, complex),
                                           np.ones(2, complex))
