"""Unit and property tests for bit packing utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.utils.bits import (
    as_bit_array,
    bit_error_rate,
    bit_errors,
    bits_from_bytes,
    bits_from_int,
    bits_to_bytes,
    bits_to_int,
    hamming_distance,
    random_bits,
)


class TestBitArrays:
    def test_as_bit_array_accepts_lists(self):
        arr = as_bit_array([1, 0, 1])
        assert arr.dtype == np.uint8
        assert arr.tolist() == [1, 0, 1]

    def test_as_bit_array_rejects_non_binary(self):
        with pytest.raises(ConfigurationError):
            as_bit_array([0, 2, 1])

    def test_empty_array_allowed(self):
        assert as_bit_array([]).size == 0


class TestByteConversion:
    def test_msb_first(self):
        assert bits_from_bytes(b"\x80").tolist() == [1, 0, 0, 0, 0, 0, 0, 0]
        assert bits_from_bytes(b"\x01").tolist() == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_roundtrip_known_bytes(self):
        data = bytes(range(256))
        assert bits_to_bytes(bits_from_bytes(data)) == data

    def test_bits_to_bytes_rejects_partial_bytes(self):
        with pytest.raises(ConfigurationError):
            bits_to_bytes([1, 0, 1])

    @given(st.binary(min_size=0, max_size=64))
    def test_roundtrip_property(self, data):
        assert bits_to_bytes(bits_from_bytes(data)) == data


class TestIntConversion:
    def test_known_value(self):
        assert bits_from_int(5, 4).tolist() == [0, 1, 0, 1]
        assert bits_to_int([0, 1, 0, 1]) == 5

    def test_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            bits_from_int(16, 4)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            bits_from_int(-1, 4)

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_roundtrip_property(self, value):
        assert bits_to_int(bits_from_int(value, 20)) == value


class TestDistances:
    def test_hamming_known(self):
        assert hamming_distance([1, 0, 1], [1, 1, 1]) == 1

    def test_hamming_requires_equal_length(self):
        with pytest.raises(ConfigurationError):
            hamming_distance([1], [1, 0])

    def test_bit_errors_alias(self):
        assert bit_errors([0, 0], [1, 1]) == 2

    def test_ber_empty_is_zero(self):
        assert bit_error_rate([], []) == 0.0

    def test_ber_half(self):
        assert bit_error_rate([0, 0, 1, 1], [0, 1, 1, 0]) == 0.5

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=100))
    def test_ber_self_is_zero(self, bits):
        assert bit_error_rate(bits, bits) == 0.0


class TestRandomBits:
    def test_reproducible(self):
        a = random_bits(100, np.random.default_rng(7))
        b = random_bits(100, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_roughly_balanced(self, rng):
        bits = random_bits(10_000, rng)
        assert 0.45 < bits.mean() < 0.55

    def test_negative_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            random_bits(-1, rng)
