"""Tests for statistics helpers (CDFs, intervals, running moments)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.utils.stats import (
    RunningMean,
    cdf_points,
    confidence_interval_mean,
    empirical_cdf,
    geometric_mean,
    percentile,
)


class TestEmpiricalCdf:
    def test_sorted_and_reaches_one(self):
        values, fractions = empirical_cdf([3.0, 1.0, 2.0])
        assert values.tolist() == [1.0, 2.0, 3.0]
        assert fractions[-1] == 1.0

    def test_empty(self):
        values, fractions = empirical_cdf([])
        assert values.size == 0 and fractions.size == 0

    def test_cdf_points_monotone(self):
        grid = np.linspace(-1, 4, 20)
        points = cdf_points([0.0, 1.0, 2.0, 3.0], grid)
        assert np.all(np.diff(points) >= 0)
        assert points[0] == 0.0 and points[-1] == 1.0


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3], 50) == 2.0

    def test_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            geometric_mean([])


class TestConfidenceInterval:
    def test_contains_mean(self):
        mean, low, high = confidence_interval_mean([1, 2, 3, 4])
        assert low <= mean <= high

    def test_single_sample_degenerate(self):
        mean, low, high = confidence_interval_mean([5.0])
        assert mean == low == high == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            confidence_interval_mean([])


class TestRunningMean:
    def test_matches_numpy(self, rng):
        data = rng.normal(size=100)
        rm = RunningMean()
        rm.extend(data)
        assert rm.mean == pytest.approx(float(data.mean()))
        assert rm.variance == pytest.approx(float(data.var(ddof=1)))

    def test_variance_zero_before_two(self):
        rm = RunningMean()
        rm.update(1.0)
        assert rm.variance == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_mean_within_range(self, values):
        rm = RunningMean()
        rm.extend(values)
        assert min(values) - 1e-6 <= rm.mean <= max(values) + 1e-6
