"""Integration tests of the full ZigZag pair decoder (§4.2, §4.3)."""

import numpy as np
import pytest

from repro.receiver.frontend import StreamConfig
from repro.zigzag.decoder import ZigZagPairDecoder

from helpers import hidden_pair_scenario


class TestPairDecoding:
    def test_canonical_pattern_decodes(self, rng, preamble, shaper,
                                       stream_config):
        captures, frames, specs, placements = hidden_pair_scenario(
            rng, preamble, shaper, snr_db=12.0)
        outcome = ZigZagPairDecoder(stream_config).decode(
            [c.samples for c in captures], specs, placements)
        for name in frames:
            assert outcome.results[name].success, name
            assert outcome.results[name].ber_against(
                frames[name].body_bits) == 0.0

    def test_residual_approaches_noise_floor(self, rng, preamble, shaper,
                                             stream_config):
        captures, frames, specs, placements = hidden_pair_scenario(
            rng, preamble, shaper, snr_db=15.0)
        outcome = ZigZagPairDecoder(stream_config).decode(
            [c.samples for c in captures], specs, placements)
        for power in outcome.residual_powers:
            assert power < 2.0  # noise floor is 1.0

    def test_equal_offsets_fail_gracefully(self, rng, preamble, shaper,
                                           stream_config):
        captures, frames, specs, placements = hidden_pair_scenario(
            rng, preamble, shaper, offsets=(100, 100))
        outcome = ZigZagPairDecoder(stream_config).decode(
            [c.samples for c in captures], specs, placements)
        assert not outcome.all_decoded
        assert "schedule" in outcome.detail

    def test_forward_only_mode(self, rng, preamble, shaper, stream_config):
        captures, frames, specs, placements = hidden_pair_scenario(
            rng, preamble, shaper, snr_db=12.0)
        outcome = ZigZagPairDecoder(stream_config,
                                    use_backward=False).decode(
            [c.samples for c in captures], specs, placements)
        assert outcome.backward_soft is None
        for name in frames:
            assert outcome.results[name].ber_against(
                frames[name].body_bits) < 0.01

    def test_backward_pass_improves_low_snr_ber(self, preamble, shaper):
        """§4.3b: fwd+bwd MRC lowers the BER versus forward-only."""
        config = StreamConfig(preamble=preamble, shaper=shaper,
                              noise_power=1.0)
        fwd, both = [], []
        for seed in range(5):
            rng = np.random.default_rng(seed + 50)
            captures, frames, specs, placements = hidden_pair_scenario(
                rng, preamble, shaper, snr_db=6.5, payload_bits=300)
            for use_backward, bucket in ((False, fwd), (True, both)):
                outcome = ZigZagPairDecoder(
                    config, use_backward=use_backward).decode(
                    [c.samples for c in captures], specs, placements)
                bucket += [outcome.results[n].ber_against(
                    frames[n].body_bits) for n in frames]
        assert np.mean(both) <= np.mean(fwd) + 1e-4

    def test_asymmetric_powers(self, rng, preamble, shaper, stream_config):
        captures, frames, specs, placements = hidden_pair_scenario(
            rng, preamble, shaper, snr_db=16.0, snr_b_db=10.0)
        outcome = ZigZagPairDecoder(stream_config).decode(
            [c.samples for c in captures], specs, placements)
        for name in frames:
            assert outcome.results[name].ber_against(
                frames[name].body_bits) < 1e-2

    def test_flipped_order_collisions(self, preamble, shaper,
                                      stream_config):
        """Fig 4-1b: B first in one collision, A first in the other."""
        rng = np.random.default_rng(9)
        from repro.phy.channel import ChannelParams
        from repro.phy.frame import Frame
        from repro.phy.medium import Transmission, synthesize
        from repro.phy.sync import Synchronizer
        from repro.utils.bits import random_bits
        from repro.zigzag.engine import PacketSpec, PlacementParams
        from repro.phy.constellation import BPSK

        amp = np.sqrt(10 ** 1.2)
        frames = {n: Frame.make(random_bits(200, rng), src=i + 1,
                                preamble=preamble)
                  for i, n in enumerate("AB")}
        params = {n: ChannelParams(
            gain=amp * np.exp(1j * rng.uniform(0, 6.28)),
            freq_offset=float(rng.uniform(-4e-3, 4e-3)),
            sampling_offset=float(rng.uniform(0, 1)),
            phase_noise_std=1e-3) for n in "AB"}
        cap1 = synthesize(
            [Transmission.from_symbols(frames["A"].symbols, shaper,
                                       params["A"], 0, "A"),
             Transmission.from_symbols(frames["B"].symbols, shaper,
                                       params["B"], 120, "B")],
            1.0, rng, leading=8, tail=40)
        cap2 = synthesize(
            [Transmission.from_symbols(frames["B"].symbols, shaper,
                                       params["B"], 0, "B"),
             Transmission.from_symbols(frames["A"].symbols, shaper,
                                       params["A"], 70, "A")],
            1.0, rng, leading=8, tail=40)
        sync = Synchronizer(preamble, shaper, threshold=0.3)
        placements = []
        for ci, cap in enumerate((cap1, cap2)):
            for t in cap.transmissions:
                est = sync.acquire(cap.samples, t.symbol0,
                                   coarse_freq=params[t.label].freq_offset,
                                   noise_power=1.0)
                placements.append(PlacementParams(
                    t.label, ci, t.symbol0 + est.sampling_offset, est))
        specs = {n: PacketSpec(n, frames[n].n_symbols, BPSK) for n in "AB"}
        outcome = ZigZagPairDecoder(stream_config).decode(
            [cap1.samples, cap2.samples], specs, placements)
        for name in frames:
            assert outcome.results[name].ber_against(
                frames[name].body_bits) < 1e-2

    def test_oracle_estimates_give_zero_ber(self, rng, preamble, shaper,
                                            stream_config):
        captures, frames, specs, placements = hidden_pair_scenario(
            rng, preamble, shaper, snr_db=12.0, oracle=True,
            phase_noise=0.0)
        outcome = ZigZagPairDecoder(stream_config).decode(
            [c.samples for c in captures], specs, placements)
        for name in frames:
            assert outcome.results[name].ber_against(
                frames[name].body_bits) == 0.0
